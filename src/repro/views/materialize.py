"""Materialized view storage + per-view incremental maintenance.

A materialized view is a k-ary relation over dictionary-encoded
identifiers, stored like the columnar triple runs
(:mod:`repro.rdf.columnar`): one flat sorted ``array('q')``, row
major, searched by binary search — generalizing the triple runs'
3-wide layout to the view's head arity.

Maintenance is by *delta rules*.  For a view ``V(h̄) ← a_1 … a_n``
and an update delta ``Δ`` (the explicit **and** implicit changed
triples, from the incremental reasoners' ``last_delta``):

* insertions — for every atom ``a_i`` and every added triple ``t``
  unifying with it (or with one of its reformulation alternatives,
  whose ground matches entail ``a_i``), the rows the rest of the body
  derives under that unifier are new candidates; anything not already
  stored is appended.
* deletions — any row whose witness join used a removed triple must
  have matched some ``a_i`` against it, so its head values agree with
  the unifier on the atom's head variables.  Those rows are the
  *suspects*; each is re-probed with a ``LIMIT 1`` residual query and
  dropped only when no alternative witness remains (the DRed
  overdelete/rederive discipline, transposed to view rows).

Both rules answer their residual queries through a caller-supplied
callback, so the view layer stays ignorant of reasoning strategies —
the database routes the probe through whatever regime it runs.
"""

from __future__ import annotations

from array import array
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from ..rdf.dictionary import TermDictionary
from ..rdf.terms import Term, Variable
from ..rdf.triples import Triple, TriplePattern
from ..sparql.ast import BGPQuery

__all__ = ["MaterializedView", "AnswerCallback", "AtomAlternatives",
           "delta_insert_rows", "delta_suspect_rows", "reprobe_suspects"]

#: Answers a BGP (rows of terms, one per distinguished variable, preset
#: values included) under the owning database's reasoning strategy.
AnswerCallback = Callable[[BGPQuery], List[Tuple[Term, ...]]]

#: The patterns whose ground matches entail an atom: the identity
#: singleton under NONE/SATURATION, the reformulation alternatives
#: (subproperties, subclasses, domains/ranges) under REFORMULATION.
AtomAlternatives = Callable[[TriplePattern], Sequence[TriplePattern]]

EncodedRow = Tuple[int, ...]


class MaterializedView:
    """One materialized view: definition, sorted encoded rows, version.

    Rows are identifiers from the *answering graph's* dictionary; the
    registry rebuilds the view whenever that graph is replaced.  The
    ``version`` counter bumps only when the stored rows actually
    change — it is the unit of partial cache invalidation (a cached
    result rewritten over this view stays valid across updates that
    did not touch it).
    """

    __slots__ = ("name", "query", "arity", "version", "rows")

    def __init__(self, name: str, query: BGPQuery):
        if not query.distinguished:
            raise ValueError("a materialized view needs head variables")
        self.name = name
        self.query = query
        self.arity = query.arity()
        self.version = 0
        self.rows: array = array("q")

    # -- sorted-run access ---------------------------------------------

    def row_count(self) -> int:
        return len(self.rows) // self.arity

    def __len__(self) -> int:
        return self.row_count()

    def _row_at(self, index: int) -> EncodedRow:
        base = index * self.arity
        return tuple(self.rows[base:base + self.arity])

    def _lower_bound(self, row: EncodedRow) -> int:
        """Index of the first stored row comparing >= ``row`` — the
        same discipline as the columnar runs' ``_lower_bound``,
        generalized to width k."""
        width = self.arity
        buf = self.rows
        lo, hi = 0, len(buf) // width
        while lo < hi:  # sc: allow(SC303): log2(rows) bisection
            mid = (lo + hi) // 2
            base = mid * width
            if tuple(buf[base:base + width]) < row:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def contains(self, row: EncodedRow) -> bool:
        index = self._lower_bound(row)
        return index < self.row_count() and self._row_at(index) == row

    def iter_encoded(self) -> Iterator[EncodedRow]:
        """Stored rows in sorted order."""
        width = self.arity
        buf = self.rows
        for base in range(0, len(buf), width):
            yield tuple(buf[base:base + width])

    def rows_decoded(self, dictionary: TermDictionary
                     ) -> List[Tuple[Term, ...]]:
        table = dictionary.decode_table()
        return [tuple(table[i] for i in row) for row in self.iter_encoded()]

    # -- mutation -------------------------------------------------------

    def replace(self, rows: Iterable[EncodedRow]) -> bool:
        """Install a full row set; returns True (and bumps the
        version) iff the content changed."""
        fresh = array("q")
        for row in sorted(set(rows)):
            fresh.extend(row)
        if fresh == self.rows:
            return False
        self.rows = fresh
        self.version += 1
        return True

    def apply_delta(self, added: Iterable[EncodedRow],
                    removed: Iterable[EncodedRow]) -> Tuple[int, int]:
        """Fold a row delta in; returns ``(rows_added, rows_removed)``
        actually applied (version bumps only when either is nonzero)."""
        gone = {row for row in removed if self.contains(row)}
        new = sorted({row for row in added
                      if row not in gone and not self.contains(row)})
        if not gone and not new:
            return (0, 0)
        merged = array("q")
        ni, nn = 0, len(new)
        for row in self.iter_encoded():
            if row in gone:
                continue
            while ni < nn and new[ni] < row:  # sc: allow(SC303): len(new)-bounded
                merged.extend(new[ni])
                ni += 1
            merged.extend(row)
        while ni < nn:  # sc: allow(SC303): drains the remaining new rows
            merged.extend(new[ni])
            ni += 1
        self.rows = merged
        self.version += 1
        return (len(new), len(gone))

    # -- materialization ------------------------------------------------

    def refresh(self, answer: AnswerCallback,
                dictionary: TermDictionary) -> bool:
        """(Re)compute the full extent through ``answer``; returns
        True iff the stored rows changed."""
        produced = answer(self.query)
        return self.replace(
            tuple(dictionary.encode(term) for term in row)
            for row in produced)

    def stats(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "definition": self.query.to_sparql(),
            "arity": self.arity,
            "rows": self.row_count(),
            "bytes": len(self.rows) * self.rows.itemsize,
            "version": self.version,
        }


# ----------------------------------------------------------------------
# delta rules
# ----------------------------------------------------------------------

def _atom_unifier(atom: TriplePattern, alternative: TriplePattern,
                  triple: Triple) -> Optional[Dict[Variable, Term]]:
    """The binding of ``atom``'s variables entailed by ``triple``
    matching ``alternative`` — ``None`` when it does not match or
    leaves an atom variable undetermined (alternatives introduce fresh
    variables for domain/range rewritings; a match that fails to pin
    every original variable gives the delta rule nothing to join on)."""
    full = alternative.matches(triple)
    if full is None:
        return None
    atom_vars = atom.variables()
    unifier = {v: full[v] for v in atom_vars if v in full}
    if len(unifier) != len(atom_vars):
        return None
    return unifier


def delta_insert_rows(view: MaterializedView, added: Sequence[Triple],
                      alternatives: AtomAlternatives,
                      answer: AnswerCallback,
                      dictionary: TermDictionary) -> Set[EncodedRow]:
    """Encoded rows newly derivable because of ``added`` (the insert
    delta rule: one residual join per (atom, unifying triple) pair)."""
    query = view.query
    head = list(query.distinguished)
    fresh: Set[EncodedRow] = set()
    probed: Set[tuple] = set()
    for i, atom in enumerate(query.patterns):
        for alternative in alternatives(atom):
            for triple in added:
                unifier = _atom_unifier(atom, alternative, triple)
                if unifier is None:
                    continue
                residual = [p.substitute(unifier)
                            for j, p in enumerate(query.patterns) if j != i]
                if not residual:
                    row = tuple(unifier[h] for h in head)
                    fresh.add(tuple(dictionary.encode(t) for t in row))
                    continue
                probe_key = (i, tuple(sorted(
                    (v.name,) + unifier[v].sort_key() for v in unifier)))
                if probe_key in probed:
                    continue  # same unifier from another delta triple
                probed.add(probe_key)
                preset = {h: unifier[h] for h in head if h in unifier}
                residual_query = BGPQuery(residual, head, preset,
                                          distinct=True)
                for produced in answer(residual_query):
                    fresh.add(tuple(dictionary.encode(t)
                                    for t in produced))
    return {row for row in fresh if not view.contains(row)}


def delta_suspect_rows(view: MaterializedView, removed: Sequence[Triple],
                       alternatives: AtomAlternatives,
                       dictionary: TermDictionary) -> Set[EncodedRow]:
    """Stored rows that *may* have lost their witness join.

    Complete by construction: a dying row's witness matched some atom
    against a removed triple, so its head values agree with that
    unifier wherever the unifier pins a head variable.  (A unifier
    pinning no head variable makes every row a suspect.)
    """
    query = view.query
    head = list(query.distinguished)
    lookup = dictionary.lookup
    suspects: Set[EncodedRow] = set()
    total = view.row_count()
    for atom in query.patterns:
        for alternative in alternatives(atom):
            for triple in removed:
                if len(suspects) == total:
                    return suspects
                full = alternative.matches(triple)
                if full is None:
                    continue
                constraints: List[Tuple[int, int]] = []
                unsatisfiable = False
                for column, h in enumerate(head):
                    term = full.get(h)
                    if term is None:
                        continue
                    term_id = lookup(term)
                    if term_id is None:
                        unsatisfiable = True  # term never interned:
                        break                 # no stored row can match
                    constraints.append((column, term_id))
                if unsatisfiable:
                    continue
                if not constraints:
                    return set(view.iter_encoded())
                for row in view.iter_encoded():
                    if all(row[c] == value for c, value in constraints):
                        suspects.add(row)
    return suspects


def reprobe_suspects(view: MaterializedView,
                     suspects: Iterable[EncodedRow],
                     answer: AnswerCallback,
                     dictionary: TermDictionary) -> Set[EncodedRow]:
    """The suspects that actually died: each is re-probed with its
    head values substituted into the view body (``LIMIT 1`` — one
    surviving witness keeps the row)."""
    head = list(view.query.distinguished)
    table = dictionary.decode_table()
    dead: Set[EncodedRow] = set()
    for row in suspects:
        binding = {h: table[row[column]] for column, h in enumerate(head)}
        probe = view.query.substitute(binding).with_modifiers(limit=1)
        if not answer(probe):
            dead.add(row)
    return dead
