"""Rewriting BGPs over materialized views.

The matcher looks for a mapping φ of a view's variables into an
incoming query's terms that sends every view atom onto a query atom —
the containment direction of Chandra–Merlin, as in
:func:`repro.sparql.containment.find_pattern_homomorphism`, but
tracked at the atom level because the rewrite needs to know *which*
query atoms the view covers.  φ witnesses that the covered subjoin's
answers are a subset of the view's rows; the extra side conditions
below make it an exact match, so view rows can replace the subjoin:

* existential view variables must map injectively to query variables
  that occur only in covered atoms and are neither distinguished nor
  images of head variables — otherwise the view's projection forgets
  a binding (or its extra freedom admits rows) the query still needs;
* every covered-atom variable the query still needs (distinguished,
  or shared with residual atoms) must be the image of a head
  variable, i.e. *provided* by a view column;
* head variables mapping to constants or to a shared query variable
  become per-row equality filters over the stored columns.

Execution then splices the view in as the join pipeline's seed
relation: full covers answer straight off the filtered rows, partial
covers feed the provided columns to
:func:`repro.sparql.joins.compile_bgp` as pre-bound slots
(``run_seeds``), and reformulation regimes — whose residual atoms
must themselves be reformulated — hash-join the view rows against a
wholesale answering of the residual query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import Term, Variable
from ..sparql.ast import BGPQuery
from ..sparql.joins import compile_bgp
from .materialize import AnswerCallback, MaterializedView

__all__ = ["ViewMatch", "match_view", "best_match", "execute_full",
           "execute_seeded", "execute_joined", "rewrite_eligible"]

Row = Tuple[Term, ...]


def rewrite_eligible(query: BGPQuery) -> bool:
    """Only set-semantics, preset-free BGPs are rewritten: view rows
    are deduplicated, so bag-semantics answers could diverge, and a
    preset changes the answer columns in ways φ does not model."""
    return query.distinct and not query.preset


@dataclass(slots=True)
class ViewMatch:
    """A successful view→query match, ready to execute."""

    view: MaterializedView
    covered: Tuple[int, ...]             #: covered query-atom indices
    provided: Dict[Variable, int]        #: query variable → view column
    const_filters: Tuple[Tuple[int, Term], ...]   #: column == constant
    pair_filters: Tuple[Tuple[int, int], ...]     #: column == column

    def is_full(self, query: BGPQuery) -> bool:
        return len(self.covered) == query.size()

    def residual_atoms(self, query: BGPQuery) -> List[int]:
        covered = set(self.covered)
        return [i for i in range(query.size()) if i not in covered]


def _check_sides(query: BGPQuery, view: MaterializedView,
                 mapping: Dict[Variable, object],
                 covered: Set[int]) -> Optional[ViewMatch]:
    """Validate φ's side conditions; build the match if they hold."""
    head = list(view.query.distinguished)
    existential = view.query.existential_variables()
    distinguished = set(query.distinguished)

    residual_vars: Set[Variable] = set()
    for i, atom in enumerate(query.patterns):
        if i not in covered:
            residual_vars |= atom.variables()

    head_images = {mapping[h] for h in head if h in mapping}
    seen_existential_images: Set[Variable] = set()
    for e in existential:
        image = mapping.get(e)
        if image is None:
            # an unconstrained existential (view atom mapped onto a
            # ground query atom never pins it) adds no requirement
            continue
        if not isinstance(image, Variable):
            return None
        if image in distinguished or image in residual_vars:
            return None
        if image in head_images or image in seen_existential_images:
            return None
        seen_existential_images.add(image)

    provided: Dict[Variable, int] = {}
    const_filters: List[Tuple[int, Term]] = []
    pair_filters: List[Tuple[int, int]] = []
    for column, h in enumerate(head):
        image = mapping.get(h)
        if image is None:
            continue
        if isinstance(image, Variable):
            first = provided.get(image)
            if first is None:
                provided[image] = column
            else:
                pair_filters.append((first, column))
        else:
            const_filters.append((column, image))  # type: ignore[arg-type]

    covered_vars: Set[Variable] = set()
    for i in covered:
        covered_vars |= query.patterns[i].variables()
    for v in covered_vars:
        if (v in distinguished or v in residual_vars) and v not in provided:
            return None

    return ViewMatch(view=view, covered=tuple(sorted(covered)),
                     provided=provided,
                     const_filters=tuple(const_filters),
                     pair_filters=tuple(pair_filters))


def match_view(query: BGPQuery,
               view: MaterializedView) -> Optional[ViewMatch]:
    """The first φ (in backtracking order) satisfying every side
    condition, or ``None``.  Unlike plain containment, the search
    keeps going past homomorphisms whose covered set fails the side
    conditions — different atom assignments provide different
    columns."""
    if not rewrite_eligible(query):
        return None
    view_atoms = view.query.patterns
    query_atoms = query.patterns
    n = len(view_atoms)

    def assign(index: int, mapping: Dict[Variable, object],
               covered: Set[int]) -> Optional[ViewMatch]:
        if index == n:
            return _check_sides(query, view, mapping, covered)
        atom = view_atoms[index]
        for i, candidate in enumerate(query_atoms):
            extended: Optional[Dict[Variable, object]] = dict(mapping)
            for term, target in zip(atom, candidate):
                assert extended is not None
                if isinstance(term, Variable):
                    bound = extended.get(term)
                    if bound is None:
                        extended[term] = target
                    elif bound != target:
                        extended = None
                elif term != target:
                    extended = None
                if extended is None:
                    break
            if extended is None:
                continue
            added = i not in covered
            if added:
                covered.add(i)
            result = assign(index + 1, extended, covered)
            if result is not None:
                return result
            if added:
                covered.discard(i)
        return None

    return assign(0, {}, set())


def best_match(query: BGPQuery, views: Sequence[MaterializedView]
               ) -> Optional[ViewMatch]:
    """The strongest match across ``views``: most atoms covered, then
    fewest stored rows (cheapest scan), then name for determinism."""
    matches = [m for m in (match_view(query, v) for v in views)
               if m is not None]
    if not matches:
        return None
    matches.sort(key=lambda m: (-len(m.covered), m.view.row_count(),
                                m.view.name))
    return matches[0]


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def _encode_filters(match: ViewMatch, graph: Graph
                    ) -> Optional[List[Tuple[int, int]]]:
    """Constant filters in identifier space; ``None`` when a constant
    was never interned (no stored row can match it)."""
    encoded: List[Tuple[int, int]] = []
    for column, term in match.const_filters:
        term_id = graph.dictionary.lookup(term)
        if term_id is None:
            return None
        encoded.append((column, term_id))
    return encoded


def _filtered_rows(match: ViewMatch, graph: Graph
                   ) -> List[Tuple[int, ...]]:
    """The stored rows passing the match's equality filters."""
    encoded = _encode_filters(match, graph)
    if encoded is None:
        return []
    pairs = match.pair_filters
    rows = []
    for row in match.view.iter_encoded():
        if encoded and any(row[c] != value for c, value in encoded):
            continue
        if pairs and any(row[a] != row[b] for a, b in pairs):
            continue
        rows.append(row)
    return rows


def _project(query: BGPQuery, assignments: List[Dict[Variable, Term]]
             ) -> List[Row]:
    """Distinct rows in distinguished order, honoring LIMIT."""
    out: List[Row] = []
    seen: Set[Row] = set()
    limit = query.limit
    for binding in assignments:
        row = tuple(binding[v] for v in query.distinguished)
        if row in seen:
            continue
        seen.add(row)
        out.append(row)
        if limit is not None and len(out) >= limit:
            break
    return out


def execute_full(match: ViewMatch, query: BGPQuery,
                 graph: Graph) -> List[Row]:
    """Full cover: the answer is a projection of the filtered rows."""
    table = graph.dictionary.decode_table()
    provided = match.provided
    assignments = [
        {v: table[row[column]] for v, column in provided.items()}
        for row in _filtered_rows(match, graph)
    ]
    return _project(query, assignments)


def execute_seeded(match: ViewMatch, query: BGPQuery,
                   graph: Graph) -> List[Row]:
    """Partial cover over a directly-answerable graph: compile the
    residual atoms with the provided variables pre-bound and push the
    view rows through as the seed relation
    (:meth:`~repro.sparql.joins.BGPPlan.run_seeds`) — the view scan
    spliced in as the pipeline's first step."""
    residual = [query.patterns[i] for i in match.residual_atoms(query)]
    provided_vars = sorted(match.provided, key=lambda v: v.name)
    plan = compile_bgp(graph, residual, pre_bound=provided_vars)
    if plan.empty:
        return []
    seeds = []
    seen_seeds: Set[Tuple[int, ...]] = set()
    for row in _filtered_rows(match, graph):
        key = tuple(row[match.provided[v]] for v in provided_vars)
        if key in seen_seeds:
            continue
        seen_seeds.add(key)
        seed: List[Optional[int]] = [None] * plan.nslots
        for position, value in enumerate(key):
            seed[position] = value
        seeds.append(seed)
    table = graph.dictionary.decode_table()
    slot_of = plan.slot_of
    assignments = []
    for binding in plan.run_seeds(seeds):
        assignments.append({v: table[binding[slot]]
                            for v, slot in slot_of.items()})
    return _project(query, assignments)


def execute_joined(match: ViewMatch, query: BGPQuery, graph: Graph,
                   answer: AnswerCallback) -> List[Row]:
    """Partial cover under a reformulating regime: the residual atoms
    must themselves be reformulated, so they are answered wholesale
    through ``answer`` and hash-joined with the view rows on the
    shared provided variables."""
    residual_indices = match.residual_atoms(query)
    residual = [query.patterns[i] for i in residual_indices]
    residual_vars: Set[Variable] = set()
    for atom in residual:
        residual_vars |= atom.variables()
    join_vars = sorted((residual_vars & set(match.provided)),
                       key=lambda v: v.name)
    needed = sorted(residual_vars
                    & (set(query.distinguished) | set(match.provided)),
                    key=lambda v: v.name)
    residual_query = BGPQuery(residual, needed, distinct=True)
    residual_rows = answer(residual_query)

    buckets: Dict[Tuple[Term, ...], List[Dict[Variable, Term]]] = {}
    positions = {v: i for i, v in enumerate(needed)}
    for row in residual_rows:
        binding = {v: row[positions[v]] for v in needed}
        key = tuple(binding[v] for v in join_vars)
        buckets.setdefault(key, []).append(binding)

    table = graph.dictionary.decode_table()
    assignments: List[Dict[Variable, Term]] = []
    for view_row in _filtered_rows(match, graph):
        view_binding = {v: table[view_row[column]]
                        for v, column in match.provided.items()}
        key = tuple(view_binding[v] for v in join_vars)
        for residual_binding in buckets.get(key, ()):
            merged = dict(residual_binding)
            merged.update(view_binding)
            assignments.append(merged)
    return _project(query, assignments)
