"""Transport-independent request handling for the serving endpoints.

Both HTTP front-ends — the thread-per-connection stdlib server
(:mod:`repro.server.http`) and the asyncio event-loop server
(:mod:`repro.server.aserver`) — speak the same SPARQL-protocol subset
with the same parameter merging, format negotiation, deadline
tightening and status mapping (400 parse/semantics, 503 queue full
with ``Retry-After``, 504 deadline).  This module holds that shared
contract once, so the two front-ends differ only in how bytes reach
the socket:

* :func:`plan_request` routes one parsed request and returns either a
  finished :class:`Response` (health, stats, validation errors) or a
  :class:`Work` item — the closure to run on the
  :class:`~repro.server.pool.WorkerPool`, its armed cancellation
  token, and the renderers mapping the outcome (or failure) back to a
  :class:`Response`;
* the front-end owns only admission and waiting: the threaded server
  blocks its connection thread on ``job.wait``, the asyncio server
  awaits a future resolved by ``Job.add_done_callback``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..cancellation import CancellationToken
from ..db import UnsupportedGraphError
from ..sparql.evaluator import REFORMULATION_STRATEGIES
from ..sparql.parser import SPARQLSyntaxError
from ..sparql.results import (boolean_to_csv, boolean_to_json,
                              results_to_csv, results_to_json)
from .pool import WorkerPool
from .service import QueryOutcome, ServerConfig, ServingDatabase
from .shard import ShardUnavailableError

__all__ = ["Response", "Work", "plan_request", "merge_params",
           "negotiate_format", "request_deadline", "json_response",
           "error_response", "JSON_TYPE", "CSV_TYPE"]

JSON_TYPE = "application/sparql-results+json"
CSV_TYPE = "text/csv; charset=utf-8"


@dataclass(frozen=True, slots=True)
class Response:
    """One finished HTTP response, transport-agnostic."""

    status: int
    body: bytes
    content_type: str
    endpoint: str  #: metrics label ("sparql", "update", ...)
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(status: int, document: object, endpoint: str,
                  headers: Optional[Dict[str, str]] = None) -> Response:
    body = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()
    return Response(status, body, "application/json", endpoint, headers or {})


def error_response(status: int, message: str, endpoint: str,
                   headers: Optional[Dict[str, str]] = None) -> Response:
    return json_response(status, {"error": message}, endpoint, headers)


@dataclass(frozen=True, slots=True)
class Work:
    """Pool work one request needs, plus its outcome/failure renderers."""

    endpoint: str
    fn: Callable[[], object]
    token: CancellationToken
    render: Callable[[object], Response]
    deadline_message: str

    def admission_error(self) -> Response:
        return error_response(503, "server overloaded: admission queue full",
                              self.endpoint, {"Retry-After": "1"})

    def deadline_error(self) -> Response:
        return error_response(504, self.deadline_message, self.endpoint)

    def map_exception(self, error: BaseException) -> Optional[Response]:
        """The 400/503 mapping for request-level faults; None re-raises."""
        if isinstance(error, ShardUnavailableError):
            return error_response(503, str(error), self.endpoint,
                                  {"Retry-After": "1"})
        if isinstance(error, (SPARQLSyntaxError, UnsupportedGraphError,
                              ValueError)):
            return error_response(400, str(error), self.endpoint)
        return None


# ----------------------------------------------------------------------
# request parsing helpers (shared verbatim by both front-ends)
# ----------------------------------------------------------------------

def merge_params(path: str, query_string: str, method: str, body: str,
                 content_type: str) -> Dict[str, str]:
    """Query-string plus (for POST) body parameters, merged.

    The body is either a form (``application/x-www-form-urlencoded``)
    or a bare ``application/sparql-query`` / ``-update`` document that
    becomes the ``query`` / ``update`` parameter by route.
    """
    params = {key: values[0]
              for key, values in parse_qs(query_string).items()}
    if method == "POST" and body:
        if "application/x-www-form-urlencoded" in content_type.lower():
            for key, values in parse_qs(body).items():
                params.setdefault(key, values[0])
        else:
            key = "update" if path.rstrip("/") == "/update" else "query"
            params.setdefault(key, body)
    return params


def negotiate_format(params: Dict[str, str], accept: str) -> str:
    requested = params.get("format")
    if requested in ("json", "csv"):
        return requested
    return "csv" if "text/csv" in accept.lower() else "json"


def request_deadline(params: Dict[str, str],
                     base: Optional[float]) -> Optional[float]:
    """The request's deadline: the server default, tightened by an
    explicit ``timeout=`` parameter (clients cannot loosen it)."""
    raw = params.get("timeout")
    if raw is None:
        return base
    try:
        requested = float(raw)
    except ValueError:
        return base
    if requested < 0:
        return base
    return requested if base is None else min(requested, base)


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------

def plan_request(service: ServingDatabase, pool: WorkerPool,
                 config: ServerConfig, method: str, target: str,
                 body: str, content_type: str, accept: str
                 ) -> Union[Response, Work]:
    """Route one request; immediate answers come back as a
    :class:`Response`, pool-bound ones as a :class:`Work` item."""
    split = urlsplit(target)
    path = split.path.rstrip("/") or "/"
    params = merge_params(split.path, split.query, method, body, content_type)
    if method == "GET":
        if path == "/sparql":
            return _plan_query(service, config, params, accept)
        if path == "/healthz":
            return _healthz(service)
        if path == "/stats":
            return _stats(service, pool)
        if path == "/views":
            return _views(service)
    elif method == "POST":
        if path == "/sparql":
            return _plan_query(service, config, params, accept)
        if path == "/update":
            return _plan_update(service, config, params)
        if path == "/snapshot":
            return _plan_snapshot(service, config, params)
        if path == "/views/advise":
            return _plan_views_advise(service, config, params)
    else:
        return error_response(405, f"method {method} not allowed",
                              endpoint="other")
    return error_response(404, f"unknown path {path!r}", endpoint="other")


def _healthz(service: ServingDatabase) -> Response:
    health = service.healthz()
    # a degraded sharded cluster answers 503 so load balancers and
    # orchestrators can act on the status code alone; the body still
    # carries the full document (which shards are down)
    status = 200 if health.get("status", "ok") == "ok" else 503
    return json_response(status, health, endpoint="healthz")


def _stats(service: ServingDatabase, pool: WorkerPool) -> Response:
    from ..obs import observability_report

    return json_response(200, {
        "server": service.stats(),
        "pool": {"workers": pool.workers,
                 "queue_depth": pool.queue_depth,
                 "queued": pool.depth},
        "obs": observability_report(command="serve"),
    }, endpoint="stats")


def _views(service: ServingDatabase) -> Response:
    return json_response(200, service.views_info(), endpoint="views")


def _plan_views_advise(service: ServingDatabase, config: ServerConfig,
                       params: Dict[str, str]) -> Union[Response, Work]:
    apply = params.get("apply", "").lower() in ("1", "true", "yes")
    try:
        min_support = int(params.get("min_support", "2"))
        max_atoms = int(params.get("max_atoms", "4"))
        max_views = int(params.get("max_views", "8"))
    except ValueError:
        return error_response(400, "min_support/max_atoms/max_views "
                              "must be integers", endpoint="views")
    token = CancellationToken(request_deadline(params, config.timeout))
    return Work(
        endpoint="views",
        fn=lambda: service.views_advise(
            apply=apply, min_support=min_support, max_atoms=max_atoms,
            max_views=max_views, timeout=token.remaining),
        token=token,
        render=lambda outcome: json_response(200, outcome,
                                             endpoint="views"),
        deadline_message="view advising exceeded its deadline")


def _plan_query(service: ServingDatabase, config: ServerConfig,
                params: Dict[str, str],
                accept: str) -> Union[Response, Work]:
    text = params.get("query")
    if not text:
        return error_response(400, "missing 'query' parameter",
                              endpoint="sparql")
    form = negotiate_format(params, accept)
    strategy = params.get("strategy")
    if strategy is not None and strategy not in REFORMULATION_STRATEGIES:
        return error_response(
            400, f"unknown strategy {strategy!r}; expected one of "
            + ", ".join(REFORMULATION_STRATEGIES), endpoint="sparql")
    token = CancellationToken(request_deadline(params, config.timeout))

    def render(outcome: object) -> Response:
        assert isinstance(outcome, QueryOutcome)
        headers = {"X-Repro-Graph-Version": str(outcome.version),
                   "X-Repro-Cache": "hit" if outcome.cached else "miss"}
        if outcome.views:
            headers["X-Repro-View-Hit"] = ",".join(outcome.views)
        if outcome.kind == "boolean":
            answer = bool(outcome.boolean)
            if form == "csv":
                return Response(200, boolean_to_csv(answer).encode(),
                                CSV_TYPE, "sparql", headers)
            return Response(200, boolean_to_json(answer).encode(),
                            JSON_TYPE, "sparql", headers)
        results = outcome.results
        assert results is not None
        if form == "csv":
            return Response(200, results_to_csv(results).encode(),
                            CSV_TYPE, "sparql", headers)
        return Response(200, results_to_json(results).encode(),
                        JSON_TYPE, "sparql", headers)

    return Work(
        endpoint="sparql",
        fn=lambda: service.query(text, token=token,
                                 reformulation_strategy=strategy),
        token=token, render=render,
        deadline_message="query exceeded its deadline")


def _plan_update(service: ServingDatabase, config: ServerConfig,
                 params: Dict[str, str]) -> Union[Response, Work]:
    text = params.get("update")
    if not text:
        return error_response(400, "missing 'update' parameter",
                              endpoint="update")
    token = CancellationToken(request_deadline(params, config.timeout))

    def render(outcome: object) -> Response:
        return json_response(200, {
            "removed": outcome.removed,  # type: ignore[attr-defined]
            "added": outcome.added,  # type: ignore[attr-defined]
            "version": outcome.version,  # type: ignore[attr-defined]
        }, endpoint="update")

    return Work(
        endpoint="update",
        fn=lambda: service.update(text, token=token),
        token=token, render=render,
        deadline_message="update exceeded its deadline")


def _plan_snapshot(service: ServingDatabase, config: ServerConfig,
                   params: Dict[str, str]) -> Union[Response, Work]:
    if not service.can_snapshot:
        return error_response(409, "server has no storage directory "
                              "(start with --storage-dir)",
                              endpoint="snapshot")
    token = CancellationToken(request_deadline(params, config.timeout))
    return Work(
        endpoint="snapshot",
        fn=lambda: service.snapshot(token=token),
        token=token,
        render=lambda outcome: json_response(200, outcome,
                                             endpoint="snapshot"),
        deadline_message="snapshot exceeded its deadline")
