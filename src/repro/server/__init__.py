"""The serving layer: :class:`RDFDatabase` as a long-lived concurrent
service.

After PR 1–3 every query entered through a one-shot, single-threaded
CLI; this package turns the store into the system the ROADMAP aims at
— one that "serves heavy traffic" — without leaving the stdlib:

* :mod:`repro.server.rwlock` — a readers–writer lock so SPARQL
  updates serialize against in-flight queries (the online variant of
  the paper's update/maintenance problem);
* :mod:`repro.server.cache` — a version-keyed LRU result cache:
  keys embed ``Graph.version``, so any effective update invalidates
  every prior entry *by construction* (no invalidation protocol to
  get wrong);
* :mod:`repro.server.pool` — a bounded worker pool with admission
  control: a full queue rejects instead of buffering without bound
  (HTTP 503), per-request deadlines cancel in-flight work through
  :mod:`repro.cancellation` (HTTP 504);
* :mod:`repro.server.service` — :class:`ServingDatabase`, the
  transport-free core tying the above together (usable in-process);
* :mod:`repro.server.protocol` — the transport-independent request
  contract (routing, parameter merging, format negotiation, the
  400/503/504 status mapping) shared by both HTTP front-ends;
* :mod:`repro.server.http` — the thread-per-connection stdlib HTTP
  endpoint speaking a SPARQL-protocol subset (``GET/POST /sparql``,
  ``POST /update``, ``GET /healthz``, ``GET /stats``);
* :mod:`repro.server.aserver` — the asyncio event-loop front-end:
  same routes and status mapping, but idle/slow sockets cost a
  coroutine instead of a thread, which keeps tail latency flat under
  connection overload;
* :mod:`repro.server.loadgen` — a closed-loop load generator driving
  mixed Q1–Q10 + update traffic (optionally Zipf-skewed toward hot
  keys), plus an overload profile (idle connections, slow readers,
  burst arrivals) for front-end p99 comparisons;
* :mod:`repro.server.shard` (with :mod:`~repro.server.shardplan`,
  :mod:`~repro.server.shardwire`, :mod:`~repro.server.shard_worker`)
  — the multi-process sharded tier: instance triples hash-partitioned
  by subject across worker processes, scatter-gather query planning,
  and a per-shard version vector keying the result cache.
"""

from .aserver import ReproAsyncServer, serve_async
from .cache import CacheStats, QueryResultCache
from .http import ReproHTTPServer, serve
from .loadgen import (LoadgenConfig, LoadReport, OverloadConfig,
                      OverloadReport, run_load, run_overload, zipf_picker)
from .pool import AdmissionError, WorkerPool
from .rwlock import ReadWriteLock
from .service import ServerConfig, ServingDatabase
from .shard import (ShardCluster, ShardedDatabase, ShardUnavailableError,
                    build_sharded_database)

__all__ = [
    "AdmissionError", "CacheStats", "LoadReport", "LoadgenConfig",
    "OverloadConfig", "OverloadReport", "QueryResultCache", "ReadWriteLock",
    "ReproAsyncServer", "ReproHTTPServer", "ServerConfig", "ServingDatabase",
    "ShardCluster", "ShardUnavailableError", "ShardedDatabase",
    "WorkerPool", "build_sharded_database", "run_load", "run_overload",
    "serve", "serve_async", "zipf_picker",
]
