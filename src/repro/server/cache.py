"""A version-keyed, LRU-bounded query-result cache.

The serving layer's answer to the saturation/reformulation trade-off
*per request*: whatever strategy answered a query, re-answering it on
an unchanged graph is pure waste.  The cache key is

    ``(query text, ruleset, backend, strategy, reformulation
    strategy, graph.version)``

— the graph's monotone version counter (PR 3's ``Graph.version``,
also behind ``cached_derived``) is *part of the key*, so an effective
update invalidates every previously cached answer by construction:
there is no invalidation message to lose, no stale read to race.
Entries for dead versions age out of the LRU bound like any other
cold entry.

Thread-safe (one mutex around an :class:`~collections.OrderedDict`;
the critical section is a dict move, far below query cost).  Hits,
misses and evictions are counted into :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..obs import get_metrics
from ..sparql.bindings import ResultSet

__all__ = ["QueryResultCache", "CacheStats"]

#: (query text, ruleset name, backend, strategy, reformulation
#: strategy, validity token).  The validity token is the graph version
#: — or, for a query answered entirely from a materialized view, the
#: view's ``("views", (name, version))`` fingerprint, which survives
#: updates that leave that view untouched (partial invalidation).
CacheKey = Tuple[str, str, str, str, str, Hashable]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time view of the cache's effectiveness."""

    size: int
    capacity: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryResultCache:
    """LRU cache from :data:`CacheKey` to :class:`ResultSet`.

    Cached result sets are treated as immutable by every consumer
    (serializers only read them), so hits hand back the shared object
    without a copy.
    """

    __slots__ = ("capacity", "_entries", "_lock", "_hits", "_misses",
                 "_evictions")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, ResultSet]" = \
            OrderedDict()  # sc: guarded-by(_lock)
        self._lock = threading.Lock()
        self._hits = 0  # sc: guarded-by(_lock)
        self._misses = 0  # sc: guarded-by(_lock)
        self._evictions = 0  # sc: guarded-by(_lock)

    def get(self, key: CacheKey) -> Optional[ResultSet]:
        metrics = get_metrics()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                metrics.counter("cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        metrics.counter("cache.hits").inc()
        return entry

    def put(self, key: CacheKey, results: ResultSet) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = results
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            get_metrics().counter("cache.evictions").inc(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(size=len(self._entries),
                              capacity=self.capacity,
                              hits=self._hits, misses=self._misses,
                              evictions=self._evictions)

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (benchmark phases)."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0
