"""The stdlib HTTP endpoint: a SPARQL-protocol subset over sockets.

Routes (rooted at the server's base URL):

* ``GET /sparql?query=...`` and ``POST /sparql`` — query answering.
  The POST body is the bare query (``application/sparql-query``) or a
  form (``query=...``).  ``format=json|csv`` (or an ``Accept`` header
  of ``text/csv``) selects the W3C results serialization; JSON is the
  default.  An optional ``timeout=SECONDS`` tightens (never loosens)
  the server's default deadline.  Under the reformulation regime an
  optional ``strategy=factorized|ucq|encoded`` parameter picks the
  reformulated-query evaluation strategy per request.
* ``POST /update`` — SPARQL Update (the ground ``INSERT DATA`` /
  ``DELETE DATA`` subset); body as above with ``update=...`` forms.
* ``POST /snapshot`` — fold the WAL into a committed snapshot (needs
  a ``--storage-dir``; answers 409 on an in-memory server).
* ``GET /healthz`` — liveness: store size, graph version, config,
  and (when durable) the committed snapshot and WAL tail length.
* ``GET /stats`` — serving statistics plus the full
  :func:`repro.obs.observability_report` of the process registry.

Status mapping (the contract the load generator and tests rely on):
``400`` parse/semantics errors, ``503`` admission queue full
(backpressure; ``Retry-After`` is set), ``504`` deadline exceeded —
the in-flight work is cancelled cooperatively through
:mod:`repro.cancellation`.

Connection handling is one thread per connection (stdlib
``ThreadingHTTPServer``); *execution* is not — every query/update is
admitted into the bounded :class:`~repro.server.pool.WorkerPool`, so
concurrency and memory stay bounded no matter how many sockets open.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..cancellation import CancellationToken, OperationCancelled
from ..db import RDFDatabase, UnsupportedGraphError
from ..obs import get_metrics, observability_report
from ..sparql.parser import SPARQLSyntaxError
from ..sparql.results import (boolean_to_csv, boolean_to_json,
                              results_to_csv, results_to_json)
from ..sparql.evaluator import REFORMULATION_STRATEGIES
from .pool import AdmissionError, WorkerPool
from .service import QueryOutcome, ServerConfig, ServingDatabase

__all__ = ["ReproHTTPServer", "serve"]

_JSON_TYPE = "application/sparql-results+json"
_CSV_TYPE = "text/csv; charset=utf-8"


class ReproHTTPServer(ThreadingHTTPServer):
    """The serving endpoint: sockets in, bounded worker pool out."""

    __slots__ = ()

    daemon_threads = True

    def __init__(self, service: ServingDatabase, config: ServerConfig):
        self.service = service
        self.config = config
        self.pool = WorkerPool(workers=config.workers,
                               queue_depth=config.queue_depth)
        super().__init__((config.host, config.port), _Handler)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def shutdown(self) -> None:  # also stop the workers
        super().shutdown()
        self.pool.shutdown(wait=False)


def serve(db: RDFDatabase,
          config: Optional[ServerConfig] = None) -> ReproHTTPServer:
    """Wrap ``db`` in a :class:`ServingDatabase` and bind the endpoint.

    Returns the server without starting it; call ``serve_forever()``
    (typically from a dedicated thread) and ``shutdown()`` to stop.
    """
    config = config if config is not None else ServerConfig()
    service = ServingDatabase(db, cache_size=config.cache_size)
    return ReproHTTPServer(service, config)


class _Handler(BaseHTTPRequestHandler):
    """One request; all real work is delegated to the worker pool."""

    __slots__ = ()

    server: ReproHTTPServer  # narrowed for mypy

    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Access logs go to metrics, not stderr (tests boot servers)."""

    def _reply(self, status: int, body: bytes, content_type: str,
               endpoint: str, extra: Optional[Dict[str, str]] = None) -> None:
        # count before the body goes out: a client that has read the
        # response must be able to observe the incremented counter
        get_metrics().counter("server.responses", endpoint=endpoint,
                              status=status).inc()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, document: object, endpoint: str,
                    extra: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()
        self._reply(status, body, "application/json", endpoint, extra)

    def _error(self, status: int, message: str, endpoint: str,
               extra: Optional[Dict[str, str]] = None) -> None:
        self._reply_json(status, {"error": message}, endpoint, extra)

    def _request_params(self) -> Dict[str, str]:
        """Query-string plus (for POST) body parameters, merged."""
        split = urlsplit(self.path)
        params = {key: values[0]
                  for key, values in parse_qs(split.query).items()}
        if self.command == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length).decode("utf-8") if length else ""
            content_type = (self.headers.get("Content-Type") or "").lower()
            if "application/x-www-form-urlencoded" in content_type:
                for key, values in parse_qs(body).items():
                    params.setdefault(key, values[0])
            elif body:
                # bare application/sparql-query / -update bodies
                key = "update" if split.path.rstrip("/") == "/update" \
                    else "query"
                params.setdefault(key, body)
        return params

    def _format(self, params: Dict[str, str]) -> str:
        requested = params.get("format")
        if requested in ("json", "csv"):
            return requested
        accept = (self.headers.get("Accept") or "").lower()
        return "csv" if "text/csv" in accept else "json"

    def _deadline(self, params: Dict[str, str]) -> Optional[float]:
        """The request's deadline: the server default, tightened by an
        explicit ``timeout=`` parameter (clients cannot loosen it)."""
        base = self.server.config.timeout
        raw = params.get("timeout")
        if raw is None:
            return base
        try:
            requested = float(raw)
        except ValueError:
            return base
        if requested < 0:
            return base
        return requested if base is None else min(requested, base)

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:
        path = urlsplit(self.path).path.rstrip("/") or "/"
        if path == "/sparql":
            self._handle_query()
        elif path == "/healthz":
            self._handle_healthz()
        elif path == "/stats":
            self._handle_stats()
        else:
            self._error(404, f"unknown path {path!r}", endpoint="other")

    def do_POST(self) -> None:
        path = urlsplit(self.path).path.rstrip("/") or "/"
        if path == "/sparql":
            self._handle_query()
        elif path == "/update":
            self._handle_update()
        elif path == "/snapshot":
            self._handle_snapshot()
        else:
            self._error(404, f"unknown path {path!r}", endpoint="other")

    def _handle_healthz(self) -> None:
        service = self.server.service
        document = {
            "status": "ok",
            "triples": len(service.db),
            "version": service.db.graph.version,
            "backend": service.db.backend,
            "strategy": service.db.strategy.value,
            "reformulation_strategy": service.db.reformulation_strategy,
        }
        if service.db.storage is not None:
            document["storage"] = service.db.storage.stats()
        self._reply_json(200, document, endpoint="healthz")

    def _handle_snapshot(self) -> None:
        service = self.server.service
        if service.db.storage is None:
            self._error(409, "server has no storage directory "
                        "(start with --storage-dir)", endpoint="snapshot")
            return
        params = self._request_params()
        token = CancellationToken(self._deadline(params))
        try:
            job = self.server.pool.submit(
                lambda: service.snapshot(token=token), token)
            outcome = job.wait(token.remaining)
        except AdmissionError:
            self._error(503, "server overloaded: admission queue full",
                        endpoint="snapshot", extra={"Retry-After": "1"})
            return
        except OperationCancelled:
            self._error(504, "snapshot exceeded its deadline",
                        endpoint="snapshot")
            return
        self._reply_json(200, outcome, endpoint="snapshot")

    def _handle_stats(self) -> None:
        self._reply_json(200, {
            "server": self.server.service.stats(),
            "pool": {"workers": self.server.pool.workers,
                     "queue_depth": self.server.pool.queue_depth,
                     "queued": self.server.pool.depth},
            "obs": observability_report(command="serve"),
        }, endpoint="stats")

    def _handle_query(self) -> None:
        params = self._request_params()
        text = params.get("query")
        if not text:
            self._error(400, "missing 'query' parameter", endpoint="sparql")
            return
        form = self._format(params)
        strategy = params.get("strategy")
        if strategy is not None and strategy not in REFORMULATION_STRATEGIES:
            self._error(400, "unknown strategy "
                        f"{strategy!r}; expected one of "
                        + ", ".join(REFORMULATION_STRATEGIES),
                        endpoint="sparql")
            return
        token = CancellationToken(self._deadline(params))
        service = self.server.service
        try:
            job = self.server.pool.submit(
                lambda: service.query(text, token=token,
                                      reformulation_strategy=strategy),
                token)
            outcome = job.wait(token.remaining)
        except AdmissionError:
            self._error(503, "server overloaded: admission queue full",
                        endpoint="sparql", extra={"Retry-After": "1"})
            return
        except OperationCancelled:
            self._error(504, "query exceeded its deadline",
                        endpoint="sparql")
            return
        except (SPARQLSyntaxError, UnsupportedGraphError, ValueError) as error:
            self._error(400, str(error), endpoint="sparql")
            return
        assert isinstance(outcome, QueryOutcome)
        extra = {"X-Repro-Graph-Version": str(outcome.version),
                 "X-Repro-Cache": "hit" if outcome.cached else "miss"}
        if outcome.kind == "boolean":
            answer = bool(outcome.boolean)
            if form == "csv":
                self._reply(200, boolean_to_csv(answer).encode(), _CSV_TYPE,
                            "sparql", extra)
            else:
                self._reply(200, boolean_to_json(answer).encode(), _JSON_TYPE,
                            "sparql", extra)
            return
        results = outcome.results
        assert results is not None
        if form == "csv":
            self._reply(200, results_to_csv(results).encode(), _CSV_TYPE,
                        "sparql", extra)
        else:
            self._reply(200, results_to_json(results).encode(), _JSON_TYPE,
                        "sparql", extra)

    def _handle_update(self) -> None:
        params = self._request_params()
        text = params.get("update")
        if not text:
            self._error(400, "missing 'update' parameter", endpoint="update")
            return
        token = CancellationToken(self._deadline(params))
        service = self.server.service
        try:
            job = self.server.pool.submit(
                lambda: service.update(text, token=token), token)
            outcome = job.wait(token.remaining)
        except AdmissionError:
            self._error(503, "server overloaded: admission queue full",
                        endpoint="update", extra={"Retry-After": "1"})
            return
        except OperationCancelled:
            self._error(504, "update exceeded its deadline",
                        endpoint="update")
            return
        except (SPARQLSyntaxError, UnsupportedGraphError, ValueError) as error:
            self._error(400, str(error), endpoint="update")
            return
        self._reply_json(200, {
            "removed": outcome.removed,  # type: ignore[union-attr]
            "added": outcome.added,  # type: ignore[union-attr]
            "version": outcome.version,  # type: ignore[union-attr]
        }, endpoint="update")
