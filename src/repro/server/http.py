"""The stdlib HTTP endpoint: a SPARQL-protocol subset over sockets.

Routes (rooted at the server's base URL):

* ``GET /sparql?query=...`` and ``POST /sparql`` — query answering.
  The POST body is the bare query (``application/sparql-query``) or a
  form (``query=...``).  ``format=json|csv`` (or an ``Accept`` header
  of ``text/csv``) selects the W3C results serialization; JSON is the
  default.  An optional ``timeout=SECONDS`` tightens (never loosens)
  the server's default deadline.  Under the reformulation regime an
  optional ``strategy=factorized|ucq|encoded`` parameter picks the
  reformulated-query evaluation strategy per request.
* ``POST /update`` — SPARQL Update (the ground ``INSERT DATA`` /
  ``DELETE DATA`` subset); body as above with ``update=...`` forms.
* ``POST /snapshot`` — fold the WAL into a committed snapshot (needs
  a ``--storage-dir``; answers 409 on an in-memory server).
* ``GET /healthz`` — liveness: store size, graph version, config,
  and (when durable) the committed snapshot and WAL tail length.
* ``GET /stats`` — serving statistics plus the full
  :func:`repro.obs.observability_report` of the process registry.

Routing, parameter handling and the status mapping (``400`` parse
errors, ``503`` queue full with ``Retry-After``, ``504`` deadline)
live in :mod:`repro.server.protocol`, shared with the asyncio
front-end (:mod:`repro.server.aserver`) — this module only binds them
to the stdlib socket machinery.

Connection handling is one thread per connection (stdlib
``ThreadingHTTPServer``); *execution* is not — every query/update is
admitted into the bounded :class:`~repro.server.pool.WorkerPool`, so
concurrency and memory stay bounded no matter how many sockets open.
"""

from __future__ import annotations

import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..cancellation import OperationCancelled
from ..db import RDFDatabase
from ..obs import get_metrics
from .pool import AdmissionError, WorkerPool
from .protocol import Response, Work, plan_request
from .service import ServerConfig, ServingDatabase

__all__ = ["ReproHTTPServer", "serve"]


class ReproHTTPServer(ThreadingHTTPServer):
    """The serving endpoint: sockets in, bounded worker pool out."""

    __slots__ = ()

    daemon_threads = True

    def __init__(self, service: ServingDatabase, config: ServerConfig):
        self.service = service
        self.config = config
        self.pool = WorkerPool(workers=config.workers,
                               queue_depth=config.queue_depth)
        super().__init__((config.host, config.port), _Handler)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def shutdown(self) -> None:  # also stop the workers
        super().shutdown()
        self.pool.shutdown(wait=False)

    def handle_error(self, request, client_address) -> None:
        """Clients that hang up mid-request are routine under load
        (the overload profile creates them on purpose): count them
        instead of printing a traceback per dropped socket."""
        error = sys.exc_info()[1]
        if isinstance(error, (BrokenPipeError, ConnectionResetError,
                              TimeoutError)):
            get_metrics().counter("server.client_disconnects").inc()
            return
        super().handle_error(request, client_address)


def serve(db: RDFDatabase,
          config: Optional[ServerConfig] = None) -> ReproHTTPServer:
    """Wrap ``db`` in a :class:`ServingDatabase` and bind the endpoint.

    Returns the server without starting it; call ``serve_forever()``
    (typically from a dedicated thread) and ``shutdown()`` to stop.
    """
    config = config if config is not None else ServerConfig()
    service = ServingDatabase(db, cache_size=config.cache_size)
    return ReproHTTPServer(service, config)


def run_work(pool: WorkerPool, work: Work) -> Response:
    """Admit, block for, and render one :class:`Work` plan.

    The threaded front-end's execution of the shared protocol: the
    connection thread parks in ``job.wait`` (the asyncio front-end
    awaits a future instead).  Unmapped exceptions propagate to the
    stdlib handler machinery, exactly as before the refactor.
    """
    try:
        job = pool.submit(work.fn, work.token)
        outcome = job.wait(work.token.remaining)
    except AdmissionError:
        return work.admission_error()
    except OperationCancelled:
        return work.deadline_error()
    except Exception as error:
        response = work.map_exception(error)
        if response is None:
            raise
        return response
    return work.render(outcome)


class _Handler(BaseHTTPRequestHandler):
    """One request; all real work is delegated to the worker pool."""

    __slots__ = ()

    server: ReproHTTPServer  # narrowed for mypy

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        """Access logs go to metrics, not stderr (tests boot servers)."""

    def _send(self, response: Response) -> None:
        # count before the body goes out: a client that has read the
        # response must be able to observe the incremented counter
        get_metrics().counter("server.responses", endpoint=response.endpoint,
                              status=response.status).inc()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def do_GET(self) -> None:
        self._dispatch()

    def do_POST(self) -> None:
        self._dispatch()

    def _dispatch(self) -> None:
        body = ""
        if self.command == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length).decode("utf-8") if length else ""
        plan = plan_request(
            self.server.service, self.server.pool, self.server.config,
            self.command, self.path, body,
            self.headers.get("Content-Type") or "",
            self.headers.get("Accept") or "")
        if isinstance(plan, Response):
            self._send(plan)
            return
        self._send(run_work(self.server.pool, plan))
