"""The shard worker process: one :class:`RDFDatabase` per core.

Each worker owns the hash-share of instance triples whose subject maps
to it (plus a full schema replica, the contract of
:mod:`repro.distributed.partition`) and runs its own reasoner — true
core scaling, no GIL sharing with the coordinator or its siblings.
The process speaks the :mod:`repro.server.shardwire` frame protocol
over the socketpair it inherits at fork: a synchronous
request/dispatch/reply loop, one request in flight at a time.

Two bookkeeping sets keep update counts byte-compatible with the
single-process server:

* ``user`` — triples explicitly asserted here (the fragment load plus
  every routed ``INSERT DATA``).  Insert/delete effect counts are
  computed against this set, because the worker's explicit graph also
  holds *shipped* triples;
* ``received`` — foreign-derived conclusions shipped in by the
  coordinator (under ρdf: range-typing conclusions whose subject this
  worker owns).  They live in the explicit graph so every strategy
  sees them, but they are invisible to effect counts, and a user
  deletion never removes one (the remote derivation still stands
  until its source ships a retraction).
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from ..db import RDFDatabase, Strategy
from ..distributed.partition import subject_owner
from ..obs import CpuStopwatch, get_metrics, observability_report, span
from ..rdf.graph import Graph
from ..rdf.triples import Triple
from ..reasoning.rulesets import get_ruleset
from ..schema import is_schema_triple
from ..sparql.parser import parse_query
from .shardwire import FrameError, recv_frame, send_frame

__all__ = ["shard_main", "ShardWorker"]

#: worker error classes re-raised coordinator-side as a 400-mapped
#: ValueError rather than an internal failure
_USER_ERRORS = ("ValueError", "SPARQLSyntaxError", "UnsupportedGraphError")


class ShardWorker:
    """The dispatch state of one shard process."""

    __slots__ = ("shard_id", "shards", "db", "user", "received",
                 "_parsed", "busy")

    #: parsed-query cache bound — at this size the cache is simply
    #: dropped; the serving mix repeats a small set of texts
    PARSE_CACHE_LIMIT = 512

    def __init__(self, shard_id: int, shards: int):
        self.shard_id = shard_id
        self.shards = shards
        self.db: Optional[RDFDatabase] = None
        self.user: set = set()
        self.received: set = set()
        self._parsed: Dict[str, object] = {}
        #: CPU seconds spent inside dispatch — the shard's *service
        #: demand*, excluding waits for the next request (and, being
        #: CPU time, excluding slices a sibling held the core).  The
        #: bench's bottleneck-capacity metric reads it via ``stats``.
        self.busy = CpuStopwatch()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        if op == "load":
            return self._op_load(request)
        if op == "query":
            return self._op_query(request)
        if op == "update":
            return self._op_update(request)
        if op == "ship":
            return self._op_ship(request)
        if op == "stats":
            return self._op_stats()
        if op == "ping":
            return {"ok": True, "version": self._version(),
                    "triples": len(self.db.graph)
                    if self.db is not None else 0}
        if op == "shutdown":
            return {"ok": True}
        raise ValueError(f"unknown shard op {op!r}")

    def _version(self) -> int:
        return self.db.graph.version if self.db is not None else 0

    def _require_db(self) -> RDFDatabase:
        if self.db is None:
            raise ValueError("shard not loaded yet")
        return self.db

    def _foreign_instance(self, triple: Triple) -> bool:
        """A conclusion to ship: instance-level, owned elsewhere."""
        return (not is_schema_triple(triple)
                and subject_owner(triple.s, self.shards) != self.shard_id)

    def _collect_ships(self, db: RDFDatabase,
                       ships_add: List[Triple],
                       ships_del: List[Triple]) -> None:
        """Append the last closure delta's foreign conclusions."""
        if db.strategy is not Strategy.SATURATION or db._reasoner is None:
            return
        added, removed = db._reasoner.last_delta
        ships_add.extend(t for t in added if self._foreign_instance(t))
        ships_del.extend(t for t in removed if self._foreign_instance(t))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _op_load(self, request: Dict[str, object]) -> Dict[str, object]:
        with span("shard.load", shard=self.shard_id) as sp:
            triples = list(request["triples"])  # type: ignore[arg-type]
            backend = str(request["backend"])
            graph = Graph(backend=backend)
            graph.update(triples)
            self.db = RDFDatabase(
                graph,
                strategy=Strategy(str(request["strategy"])),
                ruleset=get_ruleset(str(request["ruleset"])),
                backend=backend,
                reformulation_strategy=str(request["reformulation_strategy"]))
            self.user = set(triples)
            self.received = set()
            self._parsed.clear()  # namespaces may have changed
            ships_add: List[Triple] = []
            if self.db.strategy is Strategy.SATURATION \
                    and self.db._reasoner is not None:
                ships_add = [t for t in self.db._reasoner.graph
                             if self._foreign_instance(t)]
            sp.set(triples=len(triples), ships=len(ships_add))
        return {"ok": True, "version": self._version(),
                "ships_add": ships_add, "ships_del": []}

    def _parse(self, db: RDFDatabase, text: str):
        """Parse ``text``, memoized: the serving mix repeats a small
        set of query texts, and parsing is a per-shard per-request
        constant that would otherwise bound scatter scaling."""
        parsed = self._parsed.get(text)
        if parsed is None:
            if len(self._parsed) >= self.PARSE_CACHE_LIMIT:
                self._parsed.clear()
            parsed = parse_query(text, db.graph.namespaces)
            self._parsed[text] = parsed
        return parsed

    def _op_query(self, request: Dict[str, object]) -> Dict[str, object]:
        db = self._require_db()
        with span("shard.query", shard=self.shard_id) as sp:
            parsed = self._parse(db, str(request["text"]))
            results = db.query(
                parsed, request.get("reformulation_strategy"))  # type: ignore[arg-type]
            sp.set(answers=len(results))
        get_metrics().counter("shard.query").inc()
        return {"ok": True,
                "vars": [v.name for v in results.variables],
                "rows": results.rows(),
                "version": self._version()}

    def _op_update(self, request: Dict[str, object]) -> Dict[str, object]:
        db = self._require_db()
        kind = str(request["kind"])
        triples = list(request["triples"])  # type: ignore[arg-type]
        counted = bool(request.get("counted", True))
        ships_add: List[Triple] = []
        ships_del: List[Triple] = []
        with span("shard.update", shard=self.shard_id, kind=kind) as sp:
            effective = 0
            if kind == "insert":
                for t in triples:  # incremental: a batch-internal dupe counts once
                    if t not in self.user:
                        effective += 1
                        self.user.add(t)
                db.insert(triples)
            elif kind == "delete":
                for t in triples:
                    if t in self.user:
                        effective += 1
                        self.user.discard(t)
                # shipped conclusions outlive a local retraction: the
                # remote derivation still stands until its owner ships
                # a deletion of its own
                db.delete([t for t in triples if t not in self.received])
            else:
                raise ValueError(f"unknown update kind {kind!r}")
            self._collect_ships(db, ships_add, ships_del)
            sp.set(triples=len(triples), effective=effective)
        get_metrics().counter("shard.update").inc()
        return {"ok": True,
                "effective": effective if counted else 0,
                "version": self._version(),
                "ships_add": ships_add, "ships_del": ships_del}

    def _op_ship(self, request: Dict[str, object]) -> Dict[str, object]:
        db = self._require_db()
        add = list(request.get("add") or ())
        remove = list(request.get("del") or ())
        ships_add: List[Triple] = []
        ships_del: List[Triple] = []
        with span("shard.ship", shard=self.shard_id) as sp:
            if remove:
                self.received.difference_update(remove)
                db.delete([t for t in remove if t not in self.user])
                self._collect_ships(db, ships_add, ships_del)
            if add:
                self.received.update(add)
                db.insert([t for t in add if t not in self.user])
                self._collect_ships(db, ships_add, ships_del)
            sp.set(added=len(add), removed=len(remove))
        get_metrics().counter("shard.ship").inc(len(add) + len(remove))
        return {"ok": True, "version": self._version(),
                "ships_add": ships_add, "ships_del": ships_del}

    def _op_stats(self) -> Dict[str, object]:
        db = self._require_db()
        return {"ok": True,
                "version": self._version(),
                "triples": len(db),
                "busy_seconds": self.busy.seconds,
                "db": db.stats(),
                "obs": observability_report(command="shard")}


def _classify(error: BaseException) -> Dict[str, object]:
    name = type(error).__name__
    return {"ok": False, "error": f"{name}: {error}",
            "user_error": name in _USER_ERRORS}


def shard_main(sock: socket.socket, shard_id: int, shards: int) -> None:
    """The worker process entry point: serve frames until EOF/shutdown.

    Every exception that escapes an operation is reported to the
    coordinator as an error reply — the worker survives bad requests;
    only a torn channel (coordinator death) or an explicit shutdown
    ends the loop.
    """
    worker = ShardWorker(shard_id, shards)
    try:
        while True:  # sc: allow(SC303): worker lifetime loop; ends on channel EOF or a shutdown frame
            request = recv_frame(sock)
            if request is None or not isinstance(request, dict):
                break
            with worker.busy:
                try:
                    reply = worker.dispatch(request)
                except Exception as error:  # pragma: no cover - defensive
                    reply = _classify(error)
            send_frame(sock, reply)
            if request.get("op") == "shutdown":
                break
    except (FrameError, OSError):  # torn channel: nothing to report to
        pass                       # (the coordinator is gone)
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
