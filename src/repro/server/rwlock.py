"""A readers–writer lock: many concurrent queries, exclusive updates.

The store's mutation surface (:class:`~repro.rdf.graph.Graph` and the
derived state inside :class:`~repro.db.database.RDFDatabase`) is built
for single-writer use; the serving layer restores that invariant under
concurrency by running every query under a shared (read) lock and
every update under an exclusive (write) lock.

Writer-preferring: once a writer is waiting, new readers queue behind
it.  Under a query-heavy mix (the SP2Bench observation: realistic
workloads are mostly reads) a FIFO or reader-preferring lock would
starve updates indefinitely; preferring writers bounds update latency
at the cost of a small dip in read throughput right around an update
— exactly the trade the paper's update-threshold analysis prices.

Not reentrant (a reader acquiring again while a writer waits would
deadlock); the serving layer never nests acquisitions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ..cancellation import OperationCancelled

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock.

    ::

        lock = ReadWriteLock()
        with lock.read():    # many threads at once
            ...
        with lock.write():   # exactly one thread, no readers
            ...
    """

    __slots__ = ("_condition", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- shared (read) side ---------------------------------------------

    def acquire_read(self, timeout: Optional[float] = None) -> None:
        """Acquire shared access; raises :class:`OperationCancelled`
        (reason ``"deadline"``) when ``timeout`` elapses first."""
        with self._condition:
            if not self._condition.wait_for(
                    lambda: not self._writer and not self._writers_waiting,
                    timeout):
                raise OperationCancelled("deadline")
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    @contextmanager
    def read(self, timeout: Optional[float] = None) -> Iterator[None]:
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    # -- exclusive (write) side -----------------------------------------

    def acquire_write(self, timeout: Optional[float] = None) -> None:
        """Acquire exclusive access; raises :class:`OperationCancelled`
        (reason ``"deadline"``) when ``timeout`` elapses first."""
        with self._condition:
            self._writers_waiting += 1
            try:
                if not self._condition.wait_for(
                        lambda: not self._writer and self._readers == 0,
                        timeout):
                    raise OperationCancelled("deadline")
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    @contextmanager
    def write(self, timeout: Optional[float] = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests, /stats) ----------------------------------

    @property
    def active_readers(self) -> int:
        return self._readers

    @property
    def writer_active(self) -> bool:
        return self._writer
