"""A bounded worker pool with admission control.

The serving layer's backpressure valve.  An unbounded executor turns
overload into unbounded queueing — every request eventually answered,
none answered in time.  This pool does the opposite: a fixed number of
workers, a bounded admission queue, and an immediate
:class:`AdmissionError` (HTTP 503 upstream) the moment the queue is
full.  Clients that retry with backoff see a healthy system shed load;
clients that don't were never going to meet their deadline anyway.

Deadlines compose with admission: the token a job carries was armed at
admission time, so time spent queued burns the request's budget, and a
worker picking up an already-expired job drops it without starting
(the caller has long since been told 504).
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List, Optional, TypeVar

from ..cancellation import CancellationToken, OperationCancelled
from ..obs import get_metrics

__all__ = ["AdmissionError", "Job", "WorkerPool"]

T = TypeVar("T")


class AdmissionError(RuntimeError):
    """The admission queue is full; the request was not accepted."""


class Job:
    """One admitted unit of work; the submitter waits on :meth:`wait`."""

    __slots__ = ("fn", "token", "_done", "_result", "_error", "_callbacks",
                 "_lock")

    def __init__(self, fn: Callable[[], object],
                 token: Optional[CancellationToken]):
        self.fn = fn
        self.token = token
        self._done = threading.Event()
        self._result: object = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Job"], None]] = []
        self._lock = threading.Lock()

    def run(self) -> None:
        try:
            if self.token is not None:
                # expired while queued: the submitter already gave up
                self.token.raise_if_cancelled()
            self._result = self.fn()
        except BaseException as error:  # delivered to the submitter
            self._error = error
        finally:
            with self._lock:
                self._done.set()
                callbacks, self._callbacks = self._callbacks, []
            for callback in callbacks:
                try:
                    callback(self)
                except Exception:  # a callback must never kill a worker
                    get_metrics().counter("server.callback_errors").inc()

    def add_done_callback(self, callback: Callable[["Job"], None]) -> None:
        """Invoke ``callback(job)`` exactly once, when the job is done.

        Fires on the worker thread that completes the job, or
        immediately on the caller's thread when the job already
        finished.  Callbacks must be non-blocking — the asyncio
        front-end uses this to hop completion onto its event loop via
        ``call_soon_threadsafe`` instead of parking a thread in
        :meth:`wait`.
        """
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def wait(self, timeout: Optional[float] = None) -> object:
        """Block for the result.

        Raises whatever the job raised; raises
        :class:`OperationCancelled` (reason ``"deadline"``) when
        ``timeout`` elapses first — the job itself is then cancelled
        through its token so the worker abandons it cooperatively.
        """
        if not self._done.wait(timeout):
            if self.token is not None:
                self.token.cancel()
            raise OperationCancelled("deadline")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def done(self) -> bool:
        return self._done.is_set()


class WorkerPool:
    """Fixed worker threads over a bounded admission queue."""

    __slots__ = ("workers", "queue_depth", "_queue", "_threads", "_closed")

    def __init__(self, workers: int = 4, queue_depth: int = 16):
        if workers < 1:
            raise ValueError("need at least one worker")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.workers = workers
        self.queue_depth = queue_depth
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=queue_depth)
        self._closed = False
        self._threads: List[threading.Thread] = []
        for i in range(workers):
            thread = threading.Thread(target=self._work, daemon=True,
                                      name=f"repro-worker-{i}")
            thread.start()
            self._threads.append(thread)

    def _work(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                job.run()
            finally:
                self._queue.task_done()
                get_metrics().gauge("server.queue_depth").set(
                    self._queue.qsize())

    def submit(self, fn: Callable[[], T],
               token: Optional[CancellationToken] = None) -> Job:
        """Admit ``fn`` for execution, or raise :class:`AdmissionError`
        immediately when the queue is full (no blocking: backpressure
        must reach the client while retrying is still useful)."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        job = Job(fn, token)
        metrics = get_metrics()
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            metrics.counter("server.rejected_backpressure").inc()
            raise AdmissionError(
                f"admission queue full ({self.queue_depth} deep)") from None
        metrics.gauge("server.queue_depth").set(self._queue.qsize())
        return job

    def run(self, fn: Callable[[], T],
            token: Optional[CancellationToken] = None) -> T:
        """Submit and wait under the token's remaining budget."""
        job = self.submit(fn, token)
        timeout = token.remaining if token is not None else None
        return job.wait(timeout)  # type: ignore[return-value]

    @property
    def depth(self) -> int:
        """Jobs currently queued (admission pressure indicator)."""
        return self._queue.qsize()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally join the workers."""
        if self._closed:
            return
        self._closed = True
        for __ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
