"""Compile BGP/UNION queries into per-shard plans; merge the answers.

The planning contract follows the partitioning contract
(:func:`repro.distributed.partition.subject_owner`): every triple —
explicit or shipped — whose subject is ``s`` lives on the shard owning
``s``, and schema triples are replicated everywhere.  That yields two
sound decompositions:

* **colocated** (SATURATION / NONE): atoms sharing one subject term
  form a *subject star* pushed as a whole — a star about subject ``s``
  can only match on ``owner(s)``, so a constant subject routes to one
  shard and a variable subject scatters, with the union over shards
  complete either way.  Cross-star joins run at the coordinator.
* **per-atom** (REFORMULATION): rewriting moves subjects across atoms
  (``?x type C`` rewrites to ``?y q ?x`` under a range constraint), so
  only single atoms are pushed, always scattered; each worker
  reformulates the atom against its replicated schema and the
  coordinator joins the fragments.

Atoms whose every property is a schema constant are answered entirely
from replicated state and route to a single replica, picked by a
stable hash of the subquery so the traffic spreads across shards.

Merged SELECT answers are set-semantics in a deterministic order:
fragments concatenate in ascending-shard order, every worker's answer
order is a function of its store, and dedup/join preserve insertion
order (no per-row value sort — the coordinator's per-answer CPU is the
cluster's serial fraction, so it is kept to hashing alone).  The
*passthrough* case (one subplan, one target shard) relays the worker's
row order byte-for-byte, matching the single-process server exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2s
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..distributed.partition import subject_owner
from ..rdf.terms import BlankNode, Term, URI, Variable
from ..rdf.triples import TriplePattern
from ..schema import SCHEMA_PROPERTIES
from ..sparql.ast import BGPQuery
from ..sparql.bindings import ResultSet
from ..sparql.union import UnionQuery

__all__ = ["SubPlan", "ShardQueryPlan", "ShardUnionPlan", "plan_query",
           "plan_bgp", "merge_bgp_rows", "Row"]

Row = Tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class SubPlan:
    """One pushed subquery: SPARQL text, its projection, its targets."""

    text: str
    variables: Tuple[Variable, ...]
    targets: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class ShardQueryPlan:
    """A decomposed BGP: subplans to gather, then join/project/merge."""

    subplans: Tuple[SubPlan, ...]
    distinguished: Tuple[Variable, ...]
    distinct: bool
    limit: Optional[int]
    passthrough: bool  #: one subplan on one shard: preserve row order


@dataclass(frozen=True, slots=True)
class ShardUnionPlan:
    """A UNION query: one BGP plan per branch, set-union at the end."""

    branches: Tuple[ShardQueryPlan, ...]
    distinguished: Tuple[Variable, ...]
    limit: Optional[int]


def _rewrite_blanks(patterns: Sequence[TriplePattern]
                    ) -> List[TriplePattern]:
    """Blank nodes in queries are non-distinguished variables; naming
    them lets a blank shared between two subject stars join at the
    coordinator."""
    taken = {term.name for pattern in patterns for term in pattern
             if isinstance(term, Variable)}
    mapping: Dict[BlankNode, Variable] = {}

    def walk(term):
        if isinstance(term, BlankNode):
            variable = mapping.get(term)
            if variable is None:
                name = f"__bnode_{term.label}"
                while name in taken:  # sc: allow(SC303): at most one underscore per existing query variable
                    name = "_" + name
                taken.add(name)
                variable = Variable(name)
                mapping[term] = variable
            return variable
        return term

    return [TriplePattern(walk(p.s), walk(p.p), walk(p.o))
            for p in patterns]


def _schema_only(patterns: Sequence[TriplePattern]) -> bool:
    """Answered entirely from the replicated schema closure?"""
    return all(isinstance(p.p, URI) and p.p in SCHEMA_PROPERTIES
               for p in patterns)


def _ordered_variables(patterns: Sequence[TriplePattern]
                       ) -> Tuple[Variable, ...]:
    ordered: List[Variable] = []
    for pattern in patterns:
        for term in pattern:
            if isinstance(term, Variable) and term not in ordered:
                ordered.append(term)
    return tuple(ordered)


def _replica_choice(text: str, shards: int) -> int:
    """A stable replica pick for schema-only subqueries.

    The schema closure is replicated on every shard, so any one can
    answer; hashing the subquery text spreads this traffic instead of
    hot-spotting one shard (replicas are byte-identical, so the answer
    does not depend on the pick)."""
    if shards == 1:
        return 0
    digest = blake2s(text.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big") % shards


def _subplan(patterns: Sequence[TriplePattern], shards: int,
             colocated: bool) -> SubPlan:
    variables = _ordered_variables(patterns)
    text = BGPQuery(patterns, distinguished=variables).to_sparql()
    if _schema_only(patterns):
        targets: Tuple[int, ...] = (_replica_choice(text, shards),)
    elif colocated and isinstance(patterns[0].s, URI):
        targets = (subject_owner(patterns[0].s, shards),)
    else:
        targets = tuple(range(shards))
    return SubPlan(text=text, variables=variables, targets=targets)


def plan_bgp(query: BGPQuery, shards: int, colocated: bool
             ) -> ShardQueryPlan:
    """Decompose one BGP for a ``shards``-way cluster."""
    patterns = _rewrite_blanks(query.patterns)
    if colocated:
        # group into subject stars, first-appearance order
        groups: Dict[object, List[TriplePattern]] = {}
        for pattern in patterns:
            groups.setdefault(pattern.s, []).append(pattern)
        parts = list(groups.values())
    else:
        parts = [[pattern] for pattern in patterns]
    subplans = tuple(_subplan(part, shards, colocated) for part in parts)
    passthrough = len(subplans) == 1 and len(subplans[0].targets) == 1
    if passthrough:
        # one shard answers the whole query: push it verbatim
        # (projection, DISTINCT and LIMIT included) and relay its rows
        # in arrival order — byte-parity with the single-process server
        original = BGPQuery(patterns, query.distinguished, query.preset,
                            query.distinct, query.limit)
        subplans = (SubPlan(text=original.to_sparql(),
                            variables=tuple(query.distinguished),
                            targets=subplans[0].targets),)
    return ShardQueryPlan(subplans=subplans,
                          distinguished=tuple(query.distinguished),
                          distinct=query.distinct, limit=query.limit,
                          passthrough=passthrough)


def plan_query(query: Union[BGPQuery, UnionQuery], shards: int,
               colocated: bool) -> Union[ShardQueryPlan, ShardUnionPlan]:
    """Plan a parsed query (BGP or UNION) for scatter-gather."""
    if isinstance(query, UnionQuery):
        return ShardUnionPlan(
            branches=tuple(plan_bgp(branch, shards, colocated)
                           for branch in query.branches),
            distinguished=tuple(query.distinguished),
            limit=query.limit)
    return plan_bgp(query, shards, colocated)


# ----------------------------------------------------------------------
# coordinator-side merge
# ----------------------------------------------------------------------

def _join(left_vars: Tuple[Variable, ...], left_rows: List[Row],
          right_vars: Tuple[Variable, ...], right_rows: List[Row]
          ) -> Tuple[Tuple[Variable, ...], List[Row]]:
    """Hash join on the shared variables (cartesian when disjoint)."""
    shared = [v for v in right_vars if v in left_vars]
    extra_positions = [i for i, v in enumerate(right_vars)
                       if v not in left_vars]
    out_vars = left_vars + tuple(right_vars[i] for i in extra_positions)
    out_rows: List[Row] = []
    if not shared:
        for left in left_rows:
            for right in right_rows:
                out_rows.append(
                    left + tuple(right[i] for i in extra_positions))
        return out_vars, out_rows
    left_key = [left_vars.index(v) for v in shared]
    right_key = [right_vars.index(v) for v in shared]
    table: Dict[Tuple[Term, ...], List[Row]] = {}
    for right in right_rows:
        table.setdefault(tuple(right[i] for i in right_key),
                         []).append(right)
    for left in left_rows:
        matches = table.get(tuple(left[i] for i in left_key))
        if not matches:
            continue
        for right in matches:
            out_rows.append(
                left + tuple(right[i] for i in extra_positions))
    return out_vars, out_rows


def merge_bgp_rows(plan: ShardQueryPlan,
                   gathered: Sequence[List[Row]]) -> ResultSet:
    """Join one plan's gathered fragments into the final answer set.

    ``gathered[i]`` is the concatenation of every target shard's rows
    for ``plan.subplans[i]`` (aligned with that subplan's
    ``variables``).
    """
    if plan.passthrough:
        results = ResultSet(plan.distinguished, distinct=plan.distinct)
        for row in gathered[0]:
            results.add(row)
        return results
    # dedup each fragment (scattered schema atoms return replicas),
    # then join smallest-first to keep intermediates tight
    relations = sorted(
        ((subplan.variables, list(dict.fromkeys(rows)))
         for subplan, rows in zip(plan.subplans, gathered)),
        key=lambda relation: len(relation[1]))
    vars_acc, rows_acc = relations[0]
    for right_vars, right_rows in relations[1:]:
        vars_acc, rows_acc = _join(vars_acc, rows_acc,
                                   right_vars, right_rows)
        if not rows_acc:
            break
    positions = [vars_acc.index(v) for v in plan.distinguished]
    # insertion order is already deterministic — fragments are
    # concatenated in ascending-shard order and each worker's answer
    # order is a function of its (deterministic) store — so dedup
    # preserves it rather than paying a value sort per answer: the
    # coordinator's per-row CPU is the serial fraction of the whole
    # cluster (Amdahl), and it is what the scaling curve is bounded by
    projected = dict.fromkeys(
        tuple(row[i] for i in positions) for row in rows_acc)
    ordered = list(projected)
    if plan.limit is not None:
        ordered = ordered[:plan.limit]
    results = ResultSet(plan.distinguished, distinct=plan.distinct)
    results.extend_unique_rows(iter(ordered))
    return results
