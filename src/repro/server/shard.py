"""The sharded serving tier: scatter-gather SPARQL over worker processes.

One coordinator process owns the HTTP front-end, the query-result
cache and the admission/locking discipline; ``N`` forked shard workers
(:mod:`repro.server.shard_worker`) each hold the hash-share of
instance triples whose *subject* maps to them — the exact
:func:`repro.distributed.partition.subject_owner` contract of the
simulated distributed engine — plus a full schema replica, and run
their own :class:`~repro.db.RDFDatabase` (their own reasoner, their
own indexes, their own core).  Saturation, the paper's
update-intensive regime, parallelizes across subjects because every
ρdf rule joins at most one instance atom with replicated schema atoms;
the only cross-shard traffic is range-typing conclusions whose
conclusion subject lands elsewhere, which the coordinator *ships* to
the owner under a refcount (a conclusion shipped by two shards
survives until both retract it).

Consistency model:

* a per-shard **version vector** replaces the single graph version:
  every worker reply carries its fragment version, queries snapshot
  the vector under the read lock, and the cache keys answers on the
  whole tuple — a hit is provably current across all shards;
* queries run under the shared side of one
  :class:`~repro.server.rwlock.ReadWriteLock`, updates (and their
  ship fix-point) under the exclusive side, so no query ever observes
  a half-propagated update;
* each shard channel is serialized by a gate; scatters acquire gates
  in ascending shard order (deadlock-free) and release each gate as
  its reply arrives, so concurrent scatters pipeline behind each
  other instead of serializing end-to-end.

A dead or unresponsive worker raises :class:`ShardUnavailableError`,
which the HTTP layer maps to 503 — degraded, never hung.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..cancellation import CancellationToken, OperationCancelled
from ..db import Strategy
from ..distributed.partition import partition_graph, subject_owner
from ..distributed.saturation import has_instance_instance_join
from ..obs import get_metrics, span
from ..rdf.graph import Graph
from ..rdf.triples import Triple
from ..reasoning.rulesets import RuleSet, get_ruleset
from ..schema import is_schema_triple
from ..sparql.bindings import ResultSet
from ..sparql.parser import parse_query
from ..sparql.update import UpdateOperation, parse_update
from .cache import CacheKey, QueryResultCache
from .rwlock import ReadWriteLock
from .service import _ASK_RE, QueryOutcome, UpdateOutcome
from .shard_worker import shard_main
from .shardplan import (ShardQueryPlan, ShardUnionPlan, merge_bgp_rows,
                        plan_query)
from .shardwire import FrameError, recv_frame, send_frame

__all__ = ["ShardUnavailableError", "ShardCluster", "ShardedDatabase",
           "build_sharded_database"]

Row = Tuple[object, ...]
_PendingShips = Dict[int, Set[Triple]]


class ShardUnavailableError(RuntimeError):
    """A shard worker died or its channel tore mid-request."""


def _check(shard_id: int, reply: object) -> Dict[str, object]:
    """Unwrap a worker reply; error replies re-raise coordinator-side.

    Worker-classified *user* errors (bad query text, unsupported
    graph) come back as :class:`ValueError` so the protocol layer maps
    them to 400 exactly like the single-process server.
    """
    if not isinstance(reply, dict):
        raise ShardUnavailableError(
            f"shard {shard_id} sent a malformed reply")
    if not reply.get("ok", False):
        message = str(reply.get("error", "shard request failed"))
        if reply.get("user_error"):
            raise ValueError(message)
        raise RuntimeError(f"shard {shard_id}: {message}")
    return reply


def _child_entry(sock: socket.socket, shard_id: int, shards: int,
                 inherited: Sequence[socket.socket]) -> None:
    """Worker bootstrap: drop the parent-end sockets of earlier shards
    (inherited across fork) so their EOF semantics stay one-owner."""
    for other in inherited:
        try:
            other.close()
        except OSError:  # pragma: no cover - defensive
            pass
    shard_main(sock, shard_id, shards)


class ShardCluster:
    """The worker processes and their serialized frame channels."""

    __slots__ = ("shards", "_processes", "_socks", "_gates", "_broken")

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._socks: List[socket.socket] = []
        self._gates = [threading.Lock() for _ in range(shards)]
        self._broken = [False] * shards
        context = multiprocessing.get_context("fork")
        for shard_id in range(shards):
            parent_end, child_end = socket.socketpair()
            process = context.Process(
                target=_child_entry,
                args=(child_end, shard_id, shards, tuple(self._socks)),
                name=f"repro-shard-{shard_id}", daemon=True)
            process.start()
            # the child's copy is the only one left once ours closes:
            # worker death is an immediate EOF on the parent end
            child_end.close()
            self._processes.append(process)
            self._socks.append(parent_end)

    # ------------------------------------------------------------------
    # channel primitives (gate held)
    # ------------------------------------------------------------------

    def _send(self, shard_id: int, request: Dict[str, object],
              timeout: Optional[float]) -> None:
        if self._broken[shard_id]:
            raise ShardUnavailableError(f"shard {shard_id} is down")
        sock = self._socks[shard_id]
        try:
            sock.settimeout(timeout)
            send_frame(sock, request)
        except (OSError, FrameError) as error:
            self._broken[shard_id] = True
            raise ShardUnavailableError(
                f"shard {shard_id} unreachable: {error}") from error

    def _recv(self, shard_id: int,
              timeout: Optional[float]) -> Dict[str, object]:
        sock = self._socks[shard_id]
        try:
            sock.settimeout(timeout)
            reply = recv_frame(sock)
        except (OSError, FrameError) as error:
            # a timed-out channel is desynchronized (the reply is
            # still coming); it cannot be reused
            self._broken[shard_id] = True
            raise ShardUnavailableError(
                f"shard {shard_id} failed: {error}") from error
        if reply is None:
            self._broken[shard_id] = True
            raise ShardUnavailableError(f"shard {shard_id} exited")
        return _check(shard_id, reply)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def alive(self, shard_id: int) -> bool:
        return (not self._broken[shard_id]
                and self._processes[shard_id].is_alive())

    def pids(self) -> List[Optional[int]]:
        return [process.pid for process in self._processes]

    def call(self, shard_id: int, request: Dict[str, object],
             timeout: Optional[float] = None) -> Dict[str, object]:
        """One request/reply exchange with a single shard."""
        with self._gates[shard_id]:
            self._send(shard_id, request, timeout)
            return self._recv(shard_id, timeout)

    def scatter(self, requests: Dict[int, Dict[str, object]],
                timeout: Optional[float] = None
                ) -> Dict[int, Dict[str, object]]:
        """Send every request, then collect every reply.

        Gates are acquired in ascending shard order — two concurrent
        scatters cannot deadlock — and released as replies arrive, so
        a second scatter's frames queue in the socket buffers while
        the first is still collecting.  All shards compute in parallel
        between their send and their recv.

        On a shard failure the remaining replies are still drained
        (their channels stay usable) before the first error re-raises.
        """
        order = sorted(requests)
        held: List[int] = []
        sent: List[int] = []
        replies: Dict[int, Dict[str, object]] = {}
        failure: Optional[BaseException] = None
        try:
            for shard_id in order:
                self._gates[shard_id].acquire()
                held.append(shard_id)
                try:
                    self._send(shard_id, requests[shard_id], timeout)
                    sent.append(shard_id)
                except ShardUnavailableError as error:
                    if failure is None:
                        failure = error
            for shard_id in sent:
                try:
                    replies[shard_id] = self._recv(shard_id, timeout)
                except (ShardUnavailableError, ValueError,
                        RuntimeError) as error:
                    if failure is None:
                        failure = error
                finally:
                    self._gates[shard_id].release()
                    held.remove(shard_id)
        finally:
            for shard_id in held:
                self._gates[shard_id].release()
        if failure is not None:
            raise failure
        return replies

    def shutdown(self) -> None:
        """Orderly stop: shutdown frames, join, then terminate."""
        for shard_id in range(self.shards):
            try:
                self.call(shard_id, {"op": "shutdown"}, timeout=2.0)
            except (ShardUnavailableError, RuntimeError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
        for sock in self._socks:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for shard_id in range(self.shards):
            self._broken[shard_id] = True


# ----------------------------------------------------------------------
# ship propagation (pure functions over the coordinator's guarded
# state, always called with the exclusive lock held by the caller)
# ----------------------------------------------------------------------

def _absorb_reply(shards: int, versions: List[int],
                  ship_refs: Dict[Triple, Set[int]],
                  shard_id: int, reply: Dict[str, object],
                  pending_add: _PendingShips,
                  pending_del: _PendingShips) -> None:
    """Record a mutating reply: fragment version plus ships.

    ``ship_refs`` refcounts each shipped conclusion by deriving shard:
    the owner receives it on the first deriver (0→1) and loses it only
    when the last deriver retracts (1→0) — a conclusion two shards
    derive survives either one's deletion.
    """
    versions[shard_id] = int(reply["version"])  # type: ignore[arg-type]
    for triple in reply.get("ships_del", ()):  # type: ignore[union-attr]
        sources = ship_refs.get(triple)
        if sources is None or shard_id not in sources:
            continue
        sources.discard(shard_id)
        if not sources:
            del ship_refs[triple]
            owner = subject_owner(triple.s, shards)
            pending_del.setdefault(owner, set()).add(triple)
    for triple in reply.get("ships_add", ()):  # type: ignore[union-attr]
        sources = ship_refs.setdefault(triple, set())
        if not sources:
            owner = subject_owner(triple.s, shards)
            pending_add.setdefault(owner, set()).add(triple)
        sources.add(shard_id)


def _run_ship_rounds(cluster: ShardCluster, versions: List[int],
                     ship_refs: Dict[Triple, Set[int]],
                     pending_add: _PendingShips,
                     pending_del: _PendingShips) -> None:
    """Propagate foreign conclusions to their owners to fix-point.

    Ship requests run without a channel deadline: like the
    single-process update path, a mutation in flight is never torn
    down halfway.
    """
    while pending_add or pending_del:  # sc: allow(SC303): converges in <=2 rounds under rho-df — shipped typings only feed subject-local rules
        targets = sorted(set(pending_add) | set(pending_del))
        requests = {
            shard_id: {
                "op": "ship",
                "add": sorted(pending_add.get(shard_id, ())),
                "del": sorted(pending_del.get(shard_id, ())),
            }
            for shard_id in targets}
        pending_add, pending_del = {}, {}
        replies = cluster.scatter(requests)
        for shard_id in targets:
            _absorb_reply(cluster.shards, versions, ship_refs, shard_id,
                          replies[shard_id], pending_add, pending_del)


def _apply_operation(cluster: ShardCluster, versions: List[int],
                     ship_refs: Dict[Triple, Set[int]],
                     operation: UpdateOperation) -> int:
    """Route one ground update operation and settle its ships.

    Schema triples broadcast to every shard (only shard 0's effect
    count is taken — the replicas change identically); instance
    triples go to their subject owner, every owner's count taken.
    """
    schema = [t for t in operation.triples if is_schema_triple(t)]
    routed: Dict[int, List[Triple]] = {}
    for triple in operation.triples:
        if not is_schema_triple(triple):
            owner = subject_owner(triple.s, cluster.shards)
            routed.setdefault(owner, []).append(triple)
    effective = 0
    pending_add: _PendingShips = {}
    pending_del: _PendingShips = {}
    batches: List[Dict[int, Dict[str, object]]] = []
    if schema:
        batches.append({
            shard_id: {"op": "update", "kind": operation.kind,
                       "triples": schema, "counted": shard_id == 0}
            for shard_id in range(cluster.shards)})
    if routed:
        batches.append({
            shard_id: {"op": "update", "kind": operation.kind,
                       "triples": triples, "counted": True}
            for shard_id, triples in routed.items()})
    for requests in batches:
        replies = cluster.scatter(requests)
        for shard_id in sorted(replies):
            reply = replies[shard_id]
            effective += int(reply["effective"])  # type: ignore[arg-type]
            _absorb_reply(cluster.shards, versions, ship_refs, shard_id,
                          reply, pending_add, pending_del)
    _run_ship_rounds(cluster, versions, ship_refs,
                     pending_add, pending_del)
    return effective


class ShardedDatabase:
    """Scatter-gather serving facade over a :class:`ShardCluster`.

    Duck-types the :class:`~repro.server.service.ServingDatabase`
    surface the protocol layer consumes (``query``/``update``/
    ``stats``/``healthz``/``update_log``/``views_*``/``snapshot``), so
    both HTTP front-ends serve a sharded store through the exact same
    request-planning code path as a single-process one.
    """

    __slots__ = ("cluster", "namespaces", "ruleset_name", "backend",
                 "strategy", "reformulation_strategy", "lock", "cache",
                 "cache_size", "_stats_lock", "_versions", "_update_log",
                 "_ship_refs", "_served_queries", "_served_updates")

    def __init__(self, cluster: ShardCluster, namespaces,
                 ruleset_name: str, backend: str, strategy: Strategy,
                 reformulation_strategy: str, cache_size: int = 256):
        self.cluster = cluster
        self.namespaces = namespaces
        self.ruleset_name = ruleset_name
        self.backend = backend
        self.strategy = strategy
        self.reformulation_strategy = reformulation_strategy
        self.lock = ReadWriteLock()
        self.cache_size = cache_size
        self.cache = QueryResultCache(cache_size)
        self._stats_lock = threading.Lock()
        self._versions = [0] * cluster.shards  # sc: guarded-by(lock)
        self._update_log: List[Tuple[int, str]] = []  # sc: guarded-by(lock)
        #: which shards currently derive each shipped conclusion — a
        #: conclusion leaves its owner only when every deriver retracts
        self._ship_refs: Dict[Triple, Set[int]] = {}  # sc: guarded-by(lock)
        self._served_queries = 0  # sc: guarded-by(_stats_lock)
        self._served_updates = 0  # sc: guarded-by(_stats_lock)

    # ------------------------------------------------------------------
    # loading and ship propagation (write side)
    # ------------------------------------------------------------------

    @property
    def _colocated(self) -> bool:
        """Whole subject stars live on one shard — true whenever the
        worker store holds materialized state (explicit or saturated);
        under reformulation the rewriting moves subjects, so only
        single atoms may be pushed (see :mod:`.shardplan`)."""
        return self.strategy is not Strategy.REFORMULATION

    def _load(self, fragments: Sequence[Graph], ruleset_name: str) -> None:
        requests = {
            shard_id: {
                "op": "load",
                "triples": list(fragment),
                "strategy": self.strategy.value,
                "ruleset": ruleset_name,
                "backend": self.backend,
                "reformulation_strategy": self.reformulation_strategy,
            }
            for shard_id, fragment in enumerate(fragments)}
        with self.lock.write(timeout=None):
            replies = self.cluster.scatter(requests)
            pending_add: _PendingShips = {}
            pending_del: _PendingShips = {}
            for shard_id in sorted(replies):
                _absorb_reply(self.cluster.shards, self._versions,
                              self._ship_refs, shard_id,
                              replies[shard_id], pending_add, pending_del)
            _run_ship_rounds(self.cluster, self._versions,
                             self._ship_refs, pending_add, pending_del)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _cache_key(self, text: str, validity: object,
                   reformulation_strategy: Optional[str]) -> CacheKey:
        return (text, self.ruleset_name, self.backend,
                self.strategy.value,
                reformulation_strategy or self.reformulation_strategy,
                validity)

    def query(self, text: str,
              timeout: Optional[float] = None,
              token: Optional[CancellationToken] = None,
              reformulation_strategy: Optional[str] = None) -> QueryOutcome:
        """Answer SPARQL ``text`` by scatter-gather, through the cache.

        The cache is keyed on the whole version vector: an entry is
        valid exactly when no shard has moved since it was computed.
        """
        if token is None:
            token = CancellationToken(timeout)
        metrics = get_metrics()
        try:
            with span("coordinator.query") as sp:
                token.raise_if_cancelled()
                with self.lock.read(timeout=token.remaining):
                    vector = tuple(self._versions)
                    version = sum(vector)
                    if _ASK_RE.match(text) is not None:
                        parsed = parse_query(text, self.namespaces)
                        results = self._evaluate(
                            parsed, token, reformulation_strategy)
                        outcome = QueryOutcome(
                            kind="boolean", version=version, cached=False,
                            boolean=len(results) > 0, seconds=sp.duration)
                    else:
                        key = self._cache_key(text, vector,
                                              reformulation_strategy)
                        hit = self.cache.get(key)
                        if hit is not None:
                            outcome = QueryOutcome(
                                kind="select", version=version,
                                cached=True, results=hit,
                                seconds=sp.duration)
                        else:
                            parsed = parse_query(text, self.namespaces)
                            results = self._evaluate(
                                parsed, token, reformulation_strategy)
                            self.cache.put(key, results)
                            outcome = QueryOutcome(
                                kind="select", version=version,
                                cached=False, results=results,
                                seconds=sp.duration)
                sp.set(version=outcome.version, cached=outcome.cached)
        except OperationCancelled as cancelled:
            if cancelled.reason == "deadline":
                metrics.counter("server.deadline_exceeded").inc()
            raise
        with self._stats_lock:
            self._served_queries += 1
        metrics.counter("server.requests", endpoint="sparql").inc()
        metrics.histogram("server.query_seconds").observe(outcome.seconds)
        return outcome

    def _evaluate(self, parsed, token: CancellationToken,
                  reformulation_strategy: Optional[str]) -> ResultSet:
        plan = plan_query(parsed, self.cluster.shards, self._colocated)
        if isinstance(plan, ShardUnionPlan):
            return self._gather_union(plan, token, reformulation_strategy)
        return self._gather_bgp(plan, token, reformulation_strategy)

    def _gather_bgp(self, plan: ShardQueryPlan, token: CancellationToken,
                    reformulation_strategy: Optional[str]) -> ResultSet:
        gathered: List[List[Row]] = []
        for subplan in plan.subplans:
            request = {"op": "query", "text": subplan.text,
                       "reformulation_strategy": reformulation_strategy}
            replies = self.cluster.scatter(
                {shard_id: request for shard_id in subplan.targets},
                timeout=token.remaining)
            rows: List[Row] = []
            for shard_id in subplan.targets:
                rows.extend(replies[shard_id]["rows"])  # type: ignore[arg-type]
            gathered.append(rows)
        return merge_bgp_rows(plan, gathered)

    def _gather_union(self, plan: ShardUnionPlan,
                      token: CancellationToken,
                      reformulation_strategy: Optional[str]) -> ResultSet:
        rows: List[Row] = []
        for branch in plan.branches:
            # branches were re-projected to the shared head at parse
            # time, so their rows align with the union's variables
            rows.extend(self._gather_bgp(
                branch, token, reformulation_strategy).rows())
        # branch order then merge order: deterministic without a sort
        ordered = list(dict.fromkeys(rows))
        if plan.limit is not None:
            ordered = ordered[:plan.limit]
        results = ResultSet(plan.distinguished, distinct=True)
        results.extend_unique_rows(iter(ordered))
        return results

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def update(self, text: str,
               timeout: Optional[float] = None,
               token: Optional[CancellationToken] = None) -> UpdateOutcome:
        """Route a ground update to the owning shards under the write
        lock, then propagate the resulting ships to fix-point.

        Schema triples broadcast to every shard (only shard 0's effect
        count is taken); instance triples go to their subject owner.
        The deadline covers admission and lock acquisition only, as in
        the single-process server — a mutation is never torn mid-way.
        """
        if token is None:
            token = CancellationToken(timeout)
        metrics = get_metrics()
        try:
            with span("coordinator.update") as sp:
                token.raise_if_cancelled()
                operations = parse_update(text, self.namespaces)
                with self.lock.write(timeout=token.remaining):
                    removed = added = 0
                    for operation in operations:
                        effective = _apply_operation(
                            self.cluster, self._versions,
                            self._ship_refs, operation)
                        if operation.kind == "insert":
                            added += effective
                        else:
                            removed += effective
                    version = sum(self._versions)
                    self._update_log.append((version, text))
                    outcome = UpdateOutcome(removed=removed, added=added,
                                            version=version,
                                            seconds=sp.duration)
                sp.set(removed=removed, added=added, version=version)
        except OperationCancelled as cancelled:
            if cancelled.reason == "deadline":
                metrics.counter("server.deadline_exceeded").inc()
            raise
        with self._stats_lock:
            self._served_updates += 1
        metrics.counter("server.requests", endpoint="update").inc()
        metrics.histogram("server.update_seconds").observe(outcome.seconds)
        return outcome

    # ------------------------------------------------------------------
    # durability and views (not available sharded)
    # ------------------------------------------------------------------

    @property
    def can_snapshot(self) -> bool:
        return False

    def snapshot(self, timeout: Optional[float] = None,
                 token: Optional[CancellationToken] = None
                 ) -> Dict[str, object]:
        raise ValueError("the sharded tier has no durable storage; "
                         "snapshots need a single-process server "
                         "started with --storage-dir")

    def views_info(self,
                   timeout: Optional[float] = None) -> Dict[str, object]:
        return {
            "count": 0, "views": [], "enabled": False,
            "note": "materialized views are not available in the "
                    "sharded tier",
            "workload_log": {"size": 0, "capacity": 0, "recorded": 0},
        }

    def views_advise(self, apply: bool = False,
                     min_support: int = 2, max_atoms: int = 4,
                     max_views: int = 8,
                     timeout: Optional[float] = None) -> Dict[str, object]:
        raise ValueError("view advising is not available in the "
                         "sharded tier")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def update_log(self,
                   timeout: Optional[float] = None) -> List[Tuple[int, str]]:
        with self.lock.read(timeout=timeout):
            return list(self._update_log)

    def healthz(self) -> Dict[str, object]:
        """The health document: per-shard liveness via cheap pings.

        A dead shard degrades the status instead of failing the
        endpoint — ``/healthz`` keeps answering while the cluster
        limps, which is what the kill-one-shard smoke test asserts.
        """
        shard_versions: List[Optional[int]] = []
        triples = 0
        down: List[int] = []
        for shard_id in range(self.cluster.shards):
            try:
                reply = self.cluster.call(shard_id, {"op": "ping"},
                                          timeout=2.0)
                shard_versions.append(int(reply["version"]))  # type: ignore[arg-type]
                triples += int(reply.get("triples", 0))  # type: ignore[arg-type]
            except (ShardUnavailableError, RuntimeError, ValueError):
                shard_versions.append(None)
                down.append(shard_id)
        with self.lock.read(timeout=None):
            version = sum(self._versions)
        return {
            "status": "degraded" if down else "ok",
            "triples": triples,
            "version": version,
            "backend": self.backend,
            "strategy": self.strategy.value,
            "reformulation_strategy": self.reformulation_strategy,
            "shards": self.cluster.shards,
            "shards_down": down,
            "shard_versions": shard_versions,
            "shard_pids": self.cluster.pids(),
        }

    def stats(self) -> Dict[str, object]:
        """Serving statistics, shaped like the single-process ones
        (``cache``/``served_*``/``graph_version``) plus the per-shard
        detail gathered from the live workers."""
        cache = self.cache.stats()
        with self._stats_lock:
            served_queries = self._served_queries
            served_updates = self._served_updates
        with self.lock.read(timeout=None):
            vector = list(self._versions)
            shipped = len(self._ship_refs)
        shards_detail: List[Dict[str, object]] = []
        for shard_id in range(self.cluster.shards):
            try:
                reply = self.cluster.call(shard_id, {"op": "stats"},
                                          timeout=5.0)
                shards_detail.append({
                    "shard": shard_id,
                    "alive": True,
                    "triples": reply.get("triples"),
                    "version": reply.get("version"),
                    "busy_seconds": reply.get("busy_seconds"),
                    "obs": reply.get("obs"),
                })
            except (ShardUnavailableError, RuntimeError, ValueError):
                shards_detail.append({"shard": shard_id, "alive": False})
        return {
            "sharded": True,
            "shards": self.cluster.shards,
            "backend": self.backend,
            "strategy": self.strategy.value,
            "reformulation_strategy": self.reformulation_strategy,
            "ruleset": self.ruleset_name,
            "graph_version": sum(vector),
            "shard_versions": vector,
            "shipped_conclusions": shipped,
            "served_queries": served_queries,
            "served_updates": served_updates,
            "active_readers": self.lock.active_readers,
            "cache": {
                "size": cache.size, "capacity": cache.capacity,
                "hits": cache.hits, "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": round(cache.hit_rate, 6),
            },
            "workload_log": {"size": 0, "capacity": 0, "recorded": 0},
            "shards_detail": shards_detail,
        }

    def close(self) -> None:
        self.cluster.shutdown()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_sharded_database(graph: Graph, shards: int, *,
                           strategy: Union[Strategy, str] = Strategy.SATURATION,
                           ruleset: Union[RuleSet, str, None] = None,
                           backend: str = "hash",
                           reformulation_strategy: str = "factorized",
                           cache_size: int = 256) -> ShardedDatabase:
    """Partition ``graph``, spawn the workers and load every fragment.

    Validates the configuration *before* forking: backward chaining
    evaluates joins at query time against triples that may live on
    another shard, and any ruleset with an instance–instance join
    (e.g. transitivity over instance properties) cannot be saturated
    worker-locally under subject hashing — both are rejected here
    rather than mis-answered later.
    """
    if isinstance(strategy, str):
        strategy = Strategy(strategy)
    if isinstance(ruleset, str):
        ruleset = get_ruleset(ruleset)
    if ruleset is None:
        ruleset = get_ruleset("rdfs-default")
    if strategy is Strategy.BACKWARD:
        raise ValueError("backward chaining is not supported in the "
                         "sharded tier (query-time joins are not "
                         "subject-local)")
    unsupported = [rule.name for rule in ruleset
                   if has_instance_instance_join(rule)]
    if unsupported:
        raise ValueError(
            "ruleset %r has instance-instance joins (%s) that cannot "
            "be saturated worker-locally under subject hashing"
            % (ruleset.name, ", ".join(unsupported)))
    partitioned = partition_graph(graph, shards)
    cluster = ShardCluster(shards)
    try:
        service = ShardedDatabase(
            cluster, graph.namespaces.copy(), ruleset.name, backend,
            strategy, reformulation_strategy, cache_size=cache_size)
        service._load(partitioned.fragments, ruleset.name)
    except BaseException:
        cluster.shutdown()
        raise
    return service
