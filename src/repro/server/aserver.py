"""The asyncio HTTP front-end: one event loop, no thread per socket.

Same routes, parameters and status mapping as the threaded endpoint —
both front-ends execute :func:`repro.server.protocol.plan_request` —
but connection handling runs on a single ``asyncio`` event loop:

* an **idle or slow socket costs a coroutine, not a thread**.  Under
  overload (thousands of open connections, slowloris readers, burst
  arrivals) the threaded server spends its scheduler on parked
  connection threads; here they are awaited read futures, so admission
  and response latency for the *live* requests stays flat — the p99
  the serving benchmark measures;
* request parsing happens on the loop, **execution does not**: work is
  admitted into the same bounded :class:`~repro.server.pool.WorkerPool`
  and completion hops back onto the loop through
  :meth:`~repro.server.pool.Job.add_done_callback` +
  ``call_soon_threadsafe``, so the loop never blocks on a query;
* backpressure is identical: a full admission queue answers 503 with
  ``Retry-After`` immediately, deadlines cancel in-flight work
  cooperatively and answer 504.

``HTTP/1.1`` keep-alive is supported (``Connection: close`` honored);
bodies are read by ``Content-Length``.  :meth:`ReproAsyncServer.start`
runs the loop in a background thread so tests and the CLI drive both
front-ends through one interface (``start()`` / ``shutdown()`` /
``base_url``).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional, Tuple

from ..cancellation import OperationCancelled
from ..db import RDFDatabase
from ..obs import get_metrics
from .pool import AdmissionError, WorkerPool
from .protocol import Response, Work, error_response, plan_request
from .service import ServerConfig, ServingDatabase

__all__ = ["ReproAsyncServer", "serve_async"]

#: request line + headers must fit in this many bytes
_HEADER_LIMIT = 65536
#: request bodies larger than this are rejected (413)
_BODY_LIMIT = 16 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


class _BadRequest(Exception):
    """A malformed request that still deserves an HTTP answer."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ReproAsyncServer:
    """The event-loop serving endpoint over the shared protocol."""

    __slots__ = ("service", "config", "pool", "_loop", "_thread",
                 "_started", "_stop", "_bound_port", "_failure")

    def __init__(self, service: ServingDatabase, config: ServerConfig):
        self.service = service
        self.config = config
        self.pool = WorkerPool(workers=config.workers,
                               queue_depth=config.queue_depth)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Future] = None
        self._bound_port: Optional[int] = None
        self._failure: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise RuntimeError("server is not started")
        return self._bound_port

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ReproAsyncServer":
        """Bind and serve from a background event-loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-aserver")
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("asyncio server failed to start in time")
        if self._failure is not None:
            raise RuntimeError("asyncio server failed to bind") \
                from self._failure
        return self

    def shutdown(self) -> None:
        """Stop the loop, close the listener, stop the workers."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            def _finish() -> None:
                if not stop.done():
                    stop.set_result(None)
            loop.call_soon_threadsafe(_finish)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.pool.shutdown(wait=False)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced by start()
            self._failure = error
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = self._loop.create_future()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=_HEADER_LIMIT)
        self._bound_port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop

    # -- connection handling --------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:  # sc: allow(SC303): bounded by close/EOF below
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    response = error_response(error.status, str(error),
                                              endpoint="other")
                    writer.write(_serialize(response, close=True))
                    await writer.drain()
                    return
                if request is None:  # clean EOF between requests
                    return
                method, target, headers, body = request
                response = await self._respond(method, target, headers, body)
                close = headers.get("connection", "").lower() == "close"
                writer.write(_serialize(response, close=close))
                await writer.drain()
                if close:
                    return
        except asyncio.CancelledError:
            # loop teardown cancelled this connection mid-await:
            # finish quietly so the stream protocol's done-callback
            # sees a completed task instead of re-raising at shutdown
            pass
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request: nothing to answer
        finally:
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict[str, str],
                                                str]]:
        """Parse one request; None on clean EOF before a request line."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise _BadRequest(431, "request headers too large") from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(400, f"malformed request line {lines[0]!r}")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = ""
        raw_length = headers.get("content-length")
        if raw_length:
            try:
                length = int(raw_length)
            except ValueError:
                raise _BadRequest(400, "malformed Content-Length") from None
            if length < 0 or length > _BODY_LIMIT:
                raise _BadRequest(413, "request body too large")
            if length:
                body = (await reader.readexactly(length)).decode("utf-8")
        return method, target, headers, body

    async def _respond(self, method: str, target: str,
                       headers: Dict[str, str], body: str) -> Response:
        plan = plan_request(self.service, self.pool, self.config,
                            method, target, body,
                            headers.get("content-type", ""),
                            headers.get("accept", ""))
        if isinstance(plan, Response):
            return plan
        return await self._await_work(plan)

    async def _await_work(self, work: Work) -> Response:
        """The event-loop counterpart of the threaded ``run_work``:
        admit, await a loop future resolved from the worker thread,
        then render — the loop itself never blocks on the query."""
        try:
            job = self.pool.submit(work.fn, work.token)
        except AdmissionError:
            return work.admission_error()
        loop = asyncio.get_running_loop()
        done: asyncio.Future = loop.create_future()

        def _resolve(_job: object) -> None:  # runs on the worker thread
            def _set() -> None:
                if not done.done():
                    done.set_result(None)
            loop.call_soon_threadsafe(_set)

        job.add_done_callback(_resolve)
        try:
            await asyncio.wait_for(
                asyncio.shield(done), timeout=work.token.remaining)
        except asyncio.TimeoutError:
            # cancel the in-flight work cooperatively, exactly as the
            # threaded front-end's job.wait timeout does
            work.token.cancel()
            return work.deadline_error()
        try:
            outcome = job.wait(0)  # already done: raises the job's error
        except OperationCancelled:
            return work.deadline_error()
        except Exception as error:
            response = work.map_exception(error)
            if response is None:
                get_metrics().counter("server.internal_errors").inc()
                return error_response(500, "internal server error",
                                      work.endpoint)
            return response
        return work.render(outcome)


def _serialize(response: Response, close: bool) -> bytes:
    """One HTTP/1.1 response as wire bytes (Content-Length framed)."""
    get_metrics().counter("server.responses", endpoint=response.endpoint,
                          status=response.status).inc()
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}",
             f"Content-Type: {response.content_type}",
             f"Content-Length: {len(response.body)}"]
    lines.extend(f"{name}: {value}"
                 for name, value in response.headers.items())
    if close:
        lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


def serve_async(db: RDFDatabase,
                config: Optional[ServerConfig] = None) -> ReproAsyncServer:
    """Wrap ``db`` in a :class:`ServingDatabase` and build the asyncio
    endpoint.  Returns the server without starting it; call
    :meth:`~ReproAsyncServer.start` and
    :meth:`~ReproAsyncServer.shutdown` around use."""
    config = config if config is not None else ServerConfig()
    service = ServingDatabase(db, cache_size=config.cache_size)
    return ReproAsyncServer(service, config)
