"""Length-prefixed frame protocol between coordinator and shards.

One frame is a 4-byte big-endian payload length followed by a pickled
(protocol-highest) Python object — always a ``dict`` in this protocol.
Pickle is the right wire format here because both ends are the same
trusted process tree (the coordinator forks its shards): terms and
triples cross the wire as objects (see ``Term.__reduce__``), framing
and encoding both run at C speed, and the coordinator spends as little
GIL time as possible per scatter.

The functions are blocking-socket primitives; the coordinator
serializes request/reply pairs per shard (one in flight per channel),
so no sequence numbers are needed.
"""

from __future__ import annotations

import pickle
import socket
from typing import Optional

__all__ = ["send_frame", "recv_frame", "FrameError", "MAX_FRAME"]

#: Upper bound on one frame (1 GiB): a corrupted length prefix must
#: not become an unbounded allocation.
MAX_FRAME = 1 << 30

_HEADER_BYTES = 4


class FrameError(RuntimeError):
    """A malformed frame: bad length prefix or truncated payload."""


def send_frame(sock: socket.socket, payload: object) -> None:
    """Write one length-prefixed pickled frame to ``sock``."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME:
        raise FrameError(f"frame of {len(data)} bytes exceeds MAX_FRAME")
    sock.sendall(len(data).to_bytes(_HEADER_BYTES, "big") + data)


def recv_frame(sock: socket.socket) -> Optional[object]:
    """Read one frame from ``sock``; ``None`` on clean EOF.

    EOF mid-frame (a peer that died between header and payload) raises
    :class:`FrameError` — the channel is unrecoverable either way, but
    the caller can distinguish an orderly close from a torn one.
    """
    header = _recv_exact(sock, _HEADER_BYTES)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length == 0 or length > MAX_FRAME:
        raise FrameError(f"invalid frame length {length}")
    data = _recv_exact(sock, length)
    if data is None:
        raise FrameError("connection closed mid-frame")
    return pickle.loads(data)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, or ``None`` on EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:  # sc: allow(SC303): bounded by the frame length; recv honors the socket timeout
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
