"""A closed-loop load generator for the serving layer.

Drives mixed query/update traffic — the SP2Bench lesson: engine
comparisons only mean something under a realistic workload mix — and
reports throughput and latency percentiles.  Closed-loop: each of
``clients`` worker threads issues its next request the moment the
previous one completes, so offered load adapts to the server (the
standard closed-system model; saturation shows up as latency, not as
an unbounded backlog).

Two transports, same traffic and same report:

* **in-process** — a :class:`~repro.server.service.ServingDatabase`
  is called directly: no sockets, measures the serving core (locking,
  cache, cancellation, engines);
* **HTTP** — a base URL is driven through ``urllib``: measures the
  full stack including the admission queue, so 503/504 counts appear
  in the report.

The query mix samples the paper's Q1–Q10 workload
(:data:`repro.workloads.WORKLOAD_QUERIES`), uniformly by default or
Zipf-skewed toward head-of-pool hot keys when ``skew > 0``
(:func:`zipf_picker`); every ``update_every``-th
request per client is a SPARQL ``INSERT DATA`` built from
:func:`repro.workloads.instance_insertions` — seeded, so two runs
offer identical traffic.  Latencies are measured with unregistered
:class:`~repro.obs.tracing.Span` stopwatches (the project's single
timing source) and every sample is kept, so the percentiles are exact.
"""

from __future__ import annotations

import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..cancellation import OperationCancelled
from ..obs.metrics import _percentile
from ..obs.tracing import Span
from ..rdf.graph import Graph
from ..workloads import WORKLOAD_QUERIES, instance_insertions
from .pool import AdmissionError
from .service import ServingDatabase

__all__ = ["LoadgenConfig", "LoadReport", "OverloadConfig", "OverloadReport",
           "run_load", "run_overload", "update_texts", "zipf_picker"]

#: a transport maps (kind, text) -> HTTP-style status code
Transport = Callable[[str, str], int]


@dataclass(frozen=True, slots=True)
class LoadgenConfig:
    """One load-generation run's traffic shape."""

    clients: int = 4              #: concurrent closed-loop clients
    requests_per_client: int = 50
    update_every: int = 10        #: every Nth request is an update (0: none)
    update_size: int = 5          #: triples per INSERT DATA batch
    timeout: Optional[float] = 10.0  #: per-request deadline (in-process)
    seed: int = 20150413
    format: str = "json"          #: HTTP results serialization
    queries: Optional[Sequence[Tuple[str, str]]] = None  #: (id, sparql)
    skew: float = 0.0             #: Zipf exponent over the query pool (0: uniform)


@dataclass(slots=True)
class LoadReport:
    """Aggregated outcome of one run (all samples retained)."""

    wall_seconds: float = 0.0
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    statuses: Dict[int, int] = field(default_factory=dict)
    requests: int = 0
    queries: int = 0
    updates: int = 0
    query_mix: Dict[str, int] = field(default_factory=dict)  #: draws per query id

    def _percentiles(self, samples: List[float]) -> Dict[str, float]:
        ordered = sorted(samples)
        if not ordered:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                    "max": 0.0}
        return {
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
            "mean": sum(ordered) / len(ordered),
            "max": ordered[-1],
        }

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall-clock."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.requests / self.wall_seconds

    def to_dict(self) -> Dict[str, object]:
        """The JSON-friendly form ``BENCH_pr4.json`` records."""
        every: List[float] = []
        for samples in self.latencies.values():
            every.extend(samples)
        return {
            "requests": self.requests,
            "queries": self.queries,
            "updates": self.updates,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput, 3),
            "statuses": {str(code): count
                         for code, count in sorted(self.statuses.items())},
            "latency_seconds": {
                kind: {name: round(value, 6) for name, value
                       in self._percentiles(samples).items()}
                for kind, samples in sorted(self.latencies.items())
            },
            "latency_all_seconds": {
                name: round(value, 6)
                for name, value in self._percentiles(every).items()},
            "query_mix": dict(sorted(self.query_mix.items())),
        }


def zipf_picker(pool: Sequence[Tuple[str, str]], skew: float
                ) -> Callable[[Random], Tuple[str, str]]:
    """A sampler over ``pool`` with Zipf-distributed rank popularity.

    ``skew`` is the Zipf exponent ``s``: rank ``k`` (1-based, pool
    order) is drawn with probability proportional to ``k**-s``.  At
    ``s == 0`` every query is equally likely (uniform — the previous
    behaviour); at ``s ≈ 1`` the head query dominates, which is the
    cache's best case under a warm cache and its worst case under an
    update-interleaved mix (every invalidation hits the hot key).
    The cumulative weights are precomputed once; each draw is one
    ``rng.random()`` plus a bisect.
    """
    if skew < 0.0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    if not pool:
        raise ValueError("empty query pool")
    if skew == 0.0:
        return lambda rng: pool[rng.randrange(len(pool))]
    cumulative = list(accumulate(
        (rank + 1) ** -skew for rank in range(len(pool))))
    total = cumulative[-1]

    def pick(rng: Random) -> Tuple[str, str]:
        return pool[bisect_left(cumulative, rng.random() * total)]

    return pick


def update_texts(graph: Graph, count: int, size: int,
                 seed: int) -> List[str]:
    """Seeded ``INSERT DATA`` requests shaped like ``graph``'s data."""
    texts = []
    for i in range(count):
        batch = instance_insertions(graph, size, seed=seed + i)
        if not batch.triples:
            break
        block = " ".join(t.n3() for t in batch.triples)
        texts.append(f"INSERT DATA {{ {block} }}")
    return texts


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------

def _inproc_transport(service: ServingDatabase,
                      config: LoadgenConfig) -> Transport:
    def call(kind: str, text: str) -> int:
        try:
            if kind == "update":
                service.update(text, timeout=config.timeout)
            else:
                service.query(text, timeout=config.timeout)
            return 200
        except OperationCancelled:
            return 504
        except AdmissionError:
            return 503
        except ValueError:
            return 400
    return call


def _http_transport(base_url: str, config: LoadgenConfig) -> Transport:
    base = base_url.rstrip("/")

    def call(kind: str, text: str) -> int:
        if kind == "update":
            url = f"{base}/update"
            payload = {"update": text}
        else:
            url = f"{base}/sparql"
            payload = {"query": text, "format": config.format}
        body = urllib.parse.urlencode(payload).encode()
        request = urllib.request.Request(
            url, data=body,
            headers={"Content-Type": "application/x-www-form-urlencoded"})
        try:
            with urllib.request.urlopen(request) as response:
                response.read()
                return int(response.status)
        except urllib.error.HTTPError as error:
            error.read()
            return int(error.code)
    return call


# ----------------------------------------------------------------------
# the closed loop
# ----------------------------------------------------------------------

def run_load(target: Union[ServingDatabase, str],
             config: Optional[LoadgenConfig] = None,
             graph: Optional[Graph] = None) -> LoadReport:
    """Run one closed-loop experiment against ``target``.

    ``target`` is an in-process service — a :class:`ServingDatabase`
    or anything duck-typing its ``query``/``update`` surface, e.g. a
    :class:`~repro.server.shard.ShardedDatabase` — or a base URL
    string (HTTP).  ``graph`` shapes the generated updates; it
    defaults to a single-process service's own graph and is required
    for HTTP and sharded targets when updates are in the mix.
    """
    config = config if config is not None else LoadgenConfig()
    if isinstance(target, str):
        transport = _http_transport(target, config)
        if graph is None and config.update_every:
            raise ValueError("HTTP targets need `graph` to shape updates")
    else:
        transport = _inproc_transport(target, config)
        if graph is None:
            db = getattr(target, "db", None)  # sharded stores have no .db
            if db is not None:
                graph = db.graph
            elif config.update_every:
                raise ValueError(
                    "sharded targets need `graph` to shape updates")

    if config.queries is not None:
        query_pool = list(config.queries)
    else:
        query_pool = [(qid, query.to_sparql())
                      for qid, (__, query) in WORKLOAD_QUERIES.items()]
    if not query_pool:
        raise ValueError("empty query pool")
    pick_query = zipf_picker(query_pool, config.skew)

    updates_per_client = (config.requests_per_client // config.update_every
                          if config.update_every else 0)
    # update traffic is derived from the graph *before* any client
    # runs: reading the live graph mid-run would race its own updates
    update_pool = {
        index: update_texts(graph, updates_per_client, config.update_size,
                            seed=config.seed + 7919 * index)
        for index in range(config.clients)
    } if updates_per_client and graph is not None else {}
    report = LoadReport()
    report_lock = threading.Lock()

    def client(index: int) -> None:
        rng = Random(config.seed * 1031 + index)
        pending_updates = update_pool.get(index, [])
        local: List[Tuple[str, int, float]] = []
        local_mix: Dict[str, int] = {}
        for i in range(config.requests_per_client):
            is_update = (config.update_every
                         and (i + 1) % config.update_every == 0
                         and pending_updates)
            if is_update:
                kind, text = "update", pending_updates.pop()
            else:
                qid, text = pick_query(rng)
                kind = "query"
                local_mix[qid] = local_mix.get(qid, 0) + 1
            stopwatch = Span("loadgen.request")
            status = transport(kind, text)
            stopwatch.finish()
            local.append((kind, status, stopwatch.duration))
        with report_lock:
            for kind, status, seconds in local:
                report.requests += 1
                if kind == "update":
                    report.updates += 1
                else:
                    report.queries += 1
                report.statuses[status] = report.statuses.get(status, 0) + 1
                report.latencies.setdefault(kind, []).append(seconds)
            for qid, count in local_mix.items():
                report.query_mix[qid] = report.query_mix.get(qid, 0) + count

    wall = Span("loadgen.run")
    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(config.clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall.finish()
    report.wall_seconds = wall.duration
    return report


# ----------------------------------------------------------------------
# the overload profile: idle sockets + slow readers + a live burst
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class OverloadConfig:
    """A connection-overload scenario for comparing front-ends.

    While ``idle_connections`` raw sockets sit open without ever
    completing a request and ``slow_readers`` trickle-read keep-alive
    responses byte by byte, ``burst_clients`` live closed-loop clients
    issue real queries.  The report's live-request p99 is the metric:
    a thread-per-connection server spends a parked thread on every
    held socket, an event-loop server an awaited read future.
    """

    idle_connections: int = 64   #: sockets opened, half a request sent
    slow_readers: int = 8        #: keep-alive clients that read slowly
    slow_read_chunk: int = 32    #: bytes per slow read
    slow_read_pause: float = 0.02  #: seconds between slow reads
    burst_clients: int = 8       #: live closed-loop clients
    requests_per_client: int = 25
    timeout: float = 30.0        #: live-request socket timeout
    seed: int = 20150413
    queries: Optional[Sequence[Tuple[str, str]]] = None  #: (id, sparql)


@dataclass(slots=True)
class OverloadReport:
    """Live-request latencies measured while the server was held."""

    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    statuses: Dict[int, int] = field(default_factory=dict)
    requests: int = 0
    connect_errors: int = 0      #: live requests that never got an answer
    idle_held: int = 0           #: idle sockets actually connected
    slow_held: int = 0           #: slow readers actually connected

    def percentiles(self) -> Dict[str, float]:
        ordered = sorted(self.latencies)
        if not ordered:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                    "max": 0.0}
        return {
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
            "mean": sum(ordered) / len(ordered),
            "max": ordered[-1],
        }

    def to_dict(self) -> Dict[str, object]:
        """The JSON-friendly form ``BENCH_pr8.json`` records."""
        return {
            "requests": self.requests,
            "connect_errors": self.connect_errors,
            "idle_held": self.idle_held,
            "slow_held": self.slow_held,
            "wall_seconds": round(self.wall_seconds, 6),
            "statuses": {str(code): count
                         for code, count in sorted(self.statuses.items())},
            "live_latency_seconds": {
                name: round(value, 6)
                for name, value in self.percentiles().items()},
        }


def _split_host_port(base_url: str) -> Tuple[str, int]:
    parts = urllib.parse.urlsplit(base_url)
    if parts.hostname is None or parts.port is None:
        raise ValueError(f"overload targets need host:port, got {base_url!r}")
    return parts.hostname, parts.port


def _slow_reader(host: str, port: int, config: OverloadConfig,
                 stop: threading.Event) -> None:
    """One keep-alive connection that drains responses in tiny sips."""
    request = (b"GET /healthz HTTP/1.1\r\n"
               b"Host: overload\r\n\r\n")
    try:
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.settimeout(5.0)
            while not stop.is_set():
                sock.sendall(request)
                # read one response slowly; framing by Content-Length is
                # deliberately ignored — we sip until the server would
                # block, then issue the next keep-alive request
                for _ in range(64):  # sc: allow(SC303): stop-gated sips
                    if stop.is_set():
                        return
                    try:
                        chunk = sock.recv(config.slow_read_chunk)
                    except socket.timeout:
                        break
                    if not chunk:
                        return
                    if stop.wait(config.slow_read_pause):
                        return
                    if len(chunk) < config.slow_read_chunk:
                        break  # drained the buffered response
    except OSError:
        return  # server refused/reset under load: the hold simply ends


def run_overload(base_url: str,
                 config: Optional[OverloadConfig] = None) -> OverloadReport:
    """Measure live-request latency while holding the server open.

    Opens ``idle_connections`` raw sockets (each sends half a request
    line, then goes silent), starts ``slow_readers`` trickle-reading
    keep-alive clients, then drives ``burst_clients`` closed-loop
    clients through the normal HTTP transport and reports their
    latency percentiles.  Works against either front-end.
    """
    config = config if config is not None else OverloadConfig()
    host, port = _split_host_port(base_url)
    report = OverloadReport()
    report_lock = threading.Lock()
    stop = threading.Event()

    # 1. idle sockets: a partial request line parks the reader forever
    idle: List[socket.socket] = []
    for _ in range(config.idle_connections):
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.sendall(b"GET /healthz HT")  # never finished
            idle.append(sock)
        except OSError:
            break  # accept backlog exhausted: hold what we got
    report.idle_held = len(idle)

    # 2. slow readers: keep-alive clients that sip their responses
    readers = [threading.Thread(target=_slow_reader,
                                args=(host, port, config, stop), daemon=True)
               for _ in range(config.slow_readers)]
    for thread in readers:
        thread.start()
    report.slow_held = len(readers)

    # 3. the live burst, through the standard transport
    load_config = LoadgenConfig(timeout=config.timeout, seed=config.seed,
                                queries=config.queries)
    transport = _http_transport(base_url, load_config)
    if config.queries is not None:
        query_pool = list(config.queries)
    else:
        query_pool = [(qid, query.to_sparql())
                      for qid, (__, query) in WORKLOAD_QUERIES.items()]
    if not query_pool:
        raise ValueError("empty query pool")

    def live_client(index: int) -> None:
        rng = Random(config.seed * 1031 + index)
        local: List[Tuple[int, float]] = []
        failures = 0
        for _ in range(config.requests_per_client):
            text = rng.choice(query_pool)[1]
            stopwatch = Span("loadgen.overload.request")
            try:
                status = transport("query", text)
            except (OSError, urllib.error.URLError):
                failures += 1
                continue
            finally:
                stopwatch.finish()
            local.append((status, stopwatch.duration))
        with report_lock:
            report.connect_errors += failures
            for status, seconds in local:
                report.requests += 1
                report.statuses[status] = report.statuses.get(status, 0) + 1
                report.latencies.append(seconds)

    wall = Span("loadgen.overload")
    burst = [threading.Thread(target=live_client, args=(i,), daemon=True)
             for i in range(config.burst_clients)]
    try:
        for thread in burst:
            thread.start()
        for thread in burst:
            thread.join()
    finally:
        stop.set()
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass
        for thread in readers:
            thread.join(timeout=5.0)
    wall.finish()
    report.wall_seconds = wall.duration
    return report
