""":class:`ServingDatabase`: the concurrent, transport-free serving core.

Everything the HTTP layer does that is *not* HTTP lives here, so tests
and the in-process load generator exercise the real serving semantics
without sockets:

* every query runs under the shared side of a
  :class:`~repro.server.rwlock.ReadWriteLock`, every update under the
  exclusive side — updates serialize against in-flight queries, and a
  query always sees one consistent graph version;
* query answers are cached in a version-keyed LRU
  (:class:`~repro.server.cache.QueryResultCache`); because the graph
  version is part of the key, a hit is *provably* current;
* per-request deadlines arm a
  :class:`~repro.cancellation.CancellationToken` that the lock
  acquisition, the evaluator loops and the saturation rounds all honor
  — a slow query gives its worker (and its read lock) back.

Updates are deliberately *not* cancelled mid-flight: the incremental
reasoners mutate derived state in place, and tearing that down halfway
would corrupt the store.  A deadline can reject an update before it
starts (queued too long, writer lock contended); once the mutation
begins it runs to completion.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cancellation import (CancellationToken, OperationCancelled,
                            cancellation_scope)
from ..db import RDFDatabase
from ..obs import get_metrics, span
from ..sparql.ast import BGPQuery
from ..sparql.bindings import ResultSet
from ..sparql.parser import parse_query
from ..views.log import DEFAULT_LOG_CAPACITY, WorkloadLog, aggregate_entries
from .cache import CacheKey, QueryResultCache
from .rwlock import ReadWriteLock

__all__ = ["ServerConfig", "QueryOutcome", "UpdateOutcome",
           "ServingDatabase"]

#: ASK detection: prefix declarations, then the ASK keyword.  The AST
#: does not distinguish ASK from SELECT (an ASK parses to a LIMIT-1
#: BGP), so the protocol layer keys off the request text.
_ASK_RE = re.compile(r"^\s*(?:PREFIX\s+\S*\s*<[^>]*>\s*)*ASK\b",
                     re.IGNORECASE)


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Admission-control and cache knobs for one serving instance."""

    workers: int = 4            #: worker threads executing requests
    queue_depth: int = 16       #: admission queue bound (full -> 503)
    timeout: Optional[float] = 10.0  #: default per-request deadline (s)
    cache_size: int = 256       #: query-result cache entries (LRU)
    host: str = "127.0.0.1"
    port: int = 8000            #: 0 picks an ephemeral port


@dataclass(frozen=True, slots=True)
class QueryOutcome:
    """One answered query, with the serving metadata tests assert on."""

    kind: str                        #: "select" | "boolean"
    version: int                     #: graph version the answer is for
    cached: bool
    results: Optional[ResultSet] = None
    boolean: Optional[bool] = None
    seconds: float = 0.0
    views: Tuple[str, ...] = ()      #: materialized views that answered it


@dataclass(frozen=True, slots=True)
class UpdateOutcome:
    """One applied update batch."""

    removed: int
    added: int
    version: int                     #: graph version after the update
    seconds: float = 0.0


@dataclass(slots=True)
class _UpdateLogEntry:
    """The serialized-order update history (differential testing)."""

    version: int
    text: str
    removed: int = 0
    added: int = 0


@dataclass(slots=True)
class ServingDatabase:
    """A thread-safe serving wrapper around one :class:`RDFDatabase`.

    The guarded-by annotations below are enforced statically (SC301):
    the update log belongs to the readers–writer ``lock`` (appended
    under its exclusive side, read under its shared side), the served
    counters to the dedicated ``_stats_lock`` mutex so bumping them
    never serializes queries behind the big lock.
    """

    db: RDFDatabase
    cache_size: int = 256
    workload_capacity: int = DEFAULT_LOG_CAPACITY
    lock: ReadWriteLock = field(default_factory=ReadWriteLock)
    cache: QueryResultCache = field(init=False, repr=False)
    workload: WorkloadLog = field(init=False, repr=False)
    _stats_lock: threading.Lock = field(init=False, repr=False)
    _update_log: List[_UpdateLogEntry] = \
        field(init=False, repr=False)  # sc: guarded-by(lock)
    _served_queries: int = \
        field(init=False, repr=False)  # sc: guarded-by(_stats_lock)
    _served_updates: int = \
        field(init=False, repr=False)  # sc: guarded-by(_stats_lock)

    def __post_init__(self) -> None:
        self.cache = QueryResultCache(self.cache_size)
        self.workload = WorkloadLog(self.workload_capacity)
        self._stats_lock = threading.Lock()
        self._update_log = []
        self._served_queries = 0
        self._served_updates = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _cache_key(self, text: str, validity: object,
                   reformulation_strategy: Optional[str] = None) -> CacheKey:
        """``validity`` is the graph version, or — for a query answered
        entirely from one materialized view — the view's
        ``("views", (name, version))`` fingerprint, so entries keyed on
        it survive updates that leave the view untouched."""
        return (text, self.db.ruleset.name, self.db.backend,
                self.db.strategy.value,
                reformulation_strategy or self.db.reformulation_strategy,
                validity)

    def query(self, text: str,
              timeout: Optional[float] = None,
              token: Optional[CancellationToken] = None,
              reformulation_strategy: Optional[str] = None) -> QueryOutcome:
        """Answer SPARQL ``text`` under the read lock, through the cache.

        ``token`` (armed at admission) takes precedence over
        ``timeout``; both absent means no deadline.  Raises
        :class:`OperationCancelled` when the deadline fires — whether
        while waiting for the lock or mid-evaluation.

        ``reformulation_strategy`` overrides the database's configured
        reformulated-query evaluation for this request; it is part of
        the cache key, so answers computed under different strategies
        never alias (they are equal by contract, but the serving layer
        does not rely on that).
        """
        if token is None:
            token = CancellationToken(timeout)
        metrics = get_metrics()
        try:
            with span("server.query") as sp:
                token.raise_if_cancelled()
                with self.lock.read(timeout=token.remaining):
                    version = self.db.graph.version
                    is_ask = _ASK_RE.match(text) is not None
                    if is_ask:
                        # ASK answers are one LIMIT-1 probe; not cached
                        with cancellation_scope(token):
                            answer = self.db.ask_query(
                                text, reformulation_strategy)
                        outcome = QueryOutcome(
                            kind="boolean", version=version, cached=False,
                            boolean=answer, seconds=sp.duration)
                    else:
                        parsed = parse_query(text, self.db.graph.namespaces)
                        bgp = parsed if isinstance(parsed, BGPQuery) else None
                        validity: object = version
                        if bgp is not None:
                            fingerprint = self.db.view_fingerprint(bgp)
                            if fingerprint is not None:
                                validity = fingerprint
                        key = self._cache_key(text, validity,
                                              reformulation_strategy)
                        hit = self.cache.get(key)
                        view_hits = (self.db.view_hits_for(bgp)
                                     if bgp is not None else ())
                        if hit is not None:
                            outcome = QueryOutcome(
                                kind="select", version=version, cached=True,
                                results=hit, seconds=sp.duration,
                                views=view_hits)
                        else:
                            with cancellation_scope(token):
                                results = self.db.query(
                                    parsed, reformulation_strategy)
                            self.cache.put(key, results)
                            outcome = QueryOutcome(
                                kind="select", version=version, cached=False,
                                results=results, seconds=sp.duration,
                                views=view_hits)
                        if bgp is not None and outcome.results is not None:
                            self.workload.record(bgp, sp.duration,
                                                 len(outcome.results))
                sp.set(version=outcome.version, cached=outcome.cached)
        except OperationCancelled as cancelled:
            if cancelled.reason == "deadline":
                metrics.counter("server.deadline_exceeded").inc()
            raise
        with self._stats_lock:
            self._served_queries += 1
        metrics.counter("server.requests", endpoint="sparql").inc()
        metrics.histogram("server.query_seconds").observe(outcome.seconds)
        return outcome

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def update(self, text: str,
               timeout: Optional[float] = None,
               token: Optional[CancellationToken] = None) -> UpdateOutcome:
        """Apply a SPARQL Update request under the write lock.

        The deadline (if any) covers admission and lock acquisition
        only — see the module docstring for why the mutation itself is
        never cancelled.
        """
        if token is None:
            token = CancellationToken(timeout)
        metrics = get_metrics()
        try:
            with span("server.update") as sp:
                token.raise_if_cancelled()
                with self.lock.write(timeout=token.remaining):
                    removed, added = self.db.update(text)
                    version = self.db.graph.version
                    self._update_log.append(_UpdateLogEntry(
                        version=version, text=text,
                        removed=removed, added=added))
                    outcome = UpdateOutcome(removed=removed, added=added,
                                            version=version,
                                            seconds=sp.duration)
                sp.set(removed=removed, added=added, version=version)
        except OperationCancelled as cancelled:
            if cancelled.reason == "deadline":
                metrics.counter("server.deadline_exceeded").inc()
            raise
        with self._stats_lock:
            self._served_updates += 1
        metrics.counter("server.requests", endpoint="update").inc()
        metrics.histogram("server.update_seconds").observe(outcome.seconds)
        return outcome

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def snapshot(self, timeout: Optional[float] = None,
                 token: Optional[CancellationToken] = None) -> Dict[str, object]:
        """Commit a durable snapshot under the write lock.

        The write lock gives the snapshot a quiescent store: no update
        can interleave between the runs being flushed and the manifest
        being committed, so the snapshot is exactly one graph version.
        Requires the wrapped database to have a storage directory.
        """
        if token is None:
            token = CancellationToken(timeout)
        with span("server.snapshot") as sp:
            token.raise_if_cancelled()
            with self.lock.write(timeout=token.remaining):
                name = self.db.snapshot()
                version = self.db.graph.version
            sp.set(snapshot=name, version=version)
        get_metrics().counter("server.requests", endpoint="snapshot").inc()
        return {"snapshot": name, "version": version}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def update_log(self,
                   timeout: Optional[float] = None) -> List[Tuple[int, str]]:
        """The applied updates in serialization order, as
        ``(version_after, text)`` — the differential tests replay this
        against a single-threaded mirror.  Snapshots under the read
        lock: an in-flight update's entry is either fully visible or
        not yet appended, never half-written."""
        with self.lock.read(timeout=timeout):
            return [(entry.version, entry.text)
                    for entry in self._update_log]

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------

    def views_info(self,
                   timeout: Optional[float] = None) -> Dict[str, object]:
        """The installed materialized views (``GET /views``)."""
        with self.lock.read(timeout=timeout):
            info = self.db.views.stats()
            info["workload_log"] = {
                "size": len(self.workload),
                "capacity": self.workload.capacity,
                "recorded": self.workload.recorded,
            }
            return info

    def views_advise(self, apply: bool = False,
                     min_support: int = 2, max_atoms: int = 4,
                     max_views: int = 8,
                     timeout: Optional[float] = None) -> Dict[str, object]:
        """Mine the served workload and (optionally) install the
        selected views (``POST /views/advise``).

        Runs under the write lock: mining only reads, but installing
        materializes views against a graph no update may move under.
        """
        workload = aggregate_entries(self.workload.snapshot())
        with self.lock.write(timeout=timeout):
            report = self.db.advise_views(
                workload=workload, max_atoms=max_atoms,
                min_support=min_support, max_views=max_views)
            report["applied"] = False
            selected = report["selected"]
            if apply and selected:
                report["installed"] = self.db.install_views(list(selected))  # type: ignore[arg-type]
                report["applied"] = True
                self.cache.clear()
        get_metrics().counter("server.requests", endpoint="views").inc()
        return report

    @property
    def can_snapshot(self) -> bool:
        """Snapshots need an attached durable store (``--storage-dir``)."""
        return self.db.storage is not None

    def healthz(self) -> Dict[str, object]:
        """The health document served by ``GET /healthz``."""
        document: Dict[str, object] = {
            "status": "ok",
            "triples": len(self.db),
            "version": self.db.graph.version,
            "backend": self.db.backend,
            "strategy": self.db.strategy.value,
            "reformulation_strategy": self.db.reformulation_strategy,
        }
        if self.db.storage is not None:
            document["storage"] = self.db.storage.stats()
        return document

    def stats(self) -> Dict[str, object]:
        """Serving statistics for ``GET /stats`` and dashboards."""
        cache = self.cache.stats()
        info: Dict[str, object] = dict(self.db.stats())
        with self._stats_lock:
            served_queries = self._served_queries
            served_updates = self._served_updates
        info.update({
            "graph_version": self.db.graph.version,
            "served_queries": served_queries,
            "served_updates": served_updates,
            "active_readers": self.lock.active_readers,
            "cache": {
                "size": cache.size, "capacity": cache.capacity,
                "hits": cache.hits, "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": round(cache.hit_rate, 6),
            },
            "workload_log": {
                "size": len(self.workload),
                "capacity": self.workload.capacity,
                "recorded": self.workload.recorded,
            },
        })
        return info
