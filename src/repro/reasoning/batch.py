"""Set-at-a-time semi-naive saturation over encoded triples.

The generic engine in :mod:`repro.reasoning.saturation` fires rules
one binding at a time: every candidate costs a decoded
:class:`~repro.rdf.triples.Triple`, a pattern match building a
``{Variable: Term}`` dict, and a re-encode on insertion.  This engine
keeps the whole semi-naive loop in identifier space: each round joins
the *entire* delta relation of a rule's pivot atom against the graph
through one compiled :class:`~repro.sparql.joins.BGPPlan` (scans plus
merge/leapfrog intersections on columnar graphs), instantiates heads
as integer triples, and lands each rule's conclusions with a single
:meth:`~repro.rdf.graph.Graph.add_encoded` batch.

Round structure, rule visibility and the semi-naive delta restriction
match the generic engine exactly, so both compute the same fixpoint in
the same number of rounds — the differential suite checks equality
triple for triple.  Works for *any* safe rule set on either backend;
``saturate`` selects it automatically for columnar graphs.
"""

from __future__ import annotations

from typing import (AbstractSet, Callable, Dict, List, Optional, Sequence,
                    Set, Tuple)

from .. import kernels
from ..cancellation import current_token
from ..obs import get_metrics, span
from ..rdf.dictionary import TermDictionary
from ..rdf.graph import Graph
from ..rdf.terms import BlankNode, Term, URI, Variable
from ..rdf.triples import TriplePattern
from ..sparql.joins import BGPPlan, compile_bgp
from .rulesets import RuleSet

__all__ = ["saturate_batch"]

EncodedTriple = Tuple[int, int, int]

_KIND_URI = 0
_KIND_BLANK = 1
_KIND_LITERAL = 2


class _TermKinds:
    """Lazily-grown map from identifier to term kind.

    Head well-formedness (no literal/blank in forbidden positions) is
    a per-*term* property; caching it per identifier avoids a decode
    and two isinstance checks per candidate conclusion.
    """

    __slots__ = ("_kinds", "_dictionary")

    def __init__(self, dictionary: TermDictionary):
        self._kinds: List[int] = []
        self._dictionary = dictionary

    def __call__(self, identifier: int) -> int:
        kinds = self._kinds
        if identifier >= len(kinds):
            decode = self._dictionary.decode
            for i in range(len(kinds), identifier + 1):
                term = decode(i)
                if isinstance(term, URI):
                    kinds.append(_KIND_URI)
                elif isinstance(term, BlankNode):
                    kinds.append(_KIND_BLANK)
                else:
                    kinds.append(_KIND_LITERAL)
        return kinds[identifier]


def _compile_pivot(pattern: TriplePattern, slot_of: Dict[Variable, int],
                   nslots: int, lookup: Callable[[Term], Optional[int]],
                   pre_checked: Tuple[int, ...] = ()
                   ) -> Optional[Callable[[EncodedTriple],
                                          Optional[List[Optional[int]]]]]:
    """A matcher turning one delta triple into an initial binding.

    Returns None when a pivot constant is not even in the dictionary —
    no delta triple can match this round.  ``pre_checked`` positions
    are constants the caller already guarantees (the per-predicate
    delta partitions): their equality checks are elided, which for the
    dominant constant-predicate pivot shape leaves a check-free
    assigner.
    """
    checks: List[Tuple[int, int]] = []      # (position, identifier)
    assigns: List[Tuple[int, int]] = []     # (position, slot)
    dup_checks: List[Tuple[int, int]] = []  # (position, slot)
    seen: Set[int] = set()
    for position, term in enumerate(pattern):
        if isinstance(term, Variable):
            slot = slot_of[term]
            if slot in seen:
                dup_checks.append((position, slot))
            else:
                seen.add(slot)
                assigns.append((position, slot))
        else:
            identifier = lookup(term)
            if identifier is None:
                return None
            if position not in pre_checked:
                checks.append((position, identifier))

    if not checks and not dup_checks:
        def match_all(triple: EncodedTriple) -> List[Optional[int]]:
            binding: List[Optional[int]] = [None] * nslots
            for position, slot in assigns:
                binding[slot] = triple[position]
            return binding

        # every candidate matches: callers can build the seed batch
        # from the assignment spec directly, skipping a call per triple
        match_all.assigns_only = tuple(assigns)  # type: ignore[attr-defined]
        return match_all

    def match(triple: EncodedTriple) -> Optional[List[Optional[int]]]:
        for position, identifier in checks:
            if triple[position] != identifier:
                return None
        binding: List[Optional[int]] = [None] * nslots
        for position, slot in assigns:
            binding[slot] = triple[position]
        for position, slot in dup_checks:
            if triple[position] != binding[slot]:
                return None
        return binding

    return match


def _compile_head(head: TriplePattern, slot_of: Dict[Variable, int],
                  encode: Callable[[Term], int], kinds: _TermKinds,
                  nonliteral_slots: AbstractSet[int] = frozenset(),
                  uri_slots: AbstractSet[int] = frozenset()
                  ) -> Callable[[Sequence[List[Optional[int]]],
                                 Set[EncodedTriple]], None]:
    """A batch instantiator: whole binding blocks to encoded conclusions.

    Mirrors :func:`repro.reasoning.rules.instantiate_head`: bindings
    that would ground a malformed triple (literal subject, non-URI
    property) are dropped.  Constant head positions are checked once
    here instead of once per candidate; the per-binding loop only
    kind-checks positions that actually vary.

    ``nonliteral_slots`` / ``uri_slots`` are slots the *body* proves
    safe (bound from subject/predicate positions of stored triples, so
    never a literal / always a URI): their runtime kind checks are
    elided, and when nothing is left to check the block folds into the
    derived set through one C-level ``set.update`` sweep.
    """
    spec: List[Tuple[bool, int]] = []  # (is_slot, slot-or-identifier)
    for term in head:
        if isinstance(term, Variable):
            spec.append((True, slot_of[term]))
        else:
            spec.append((False, encode(term)))
    (s_var, s_val), (p_var, p_val), (o_var, o_val) = spec
    if ((not s_var and kinds(s_val) == _KIND_LITERAL)
            or (not p_var and kinds(p_val) != _KIND_URI)):
        # every instantiation would be malformed: a constant no-op rule
        def drop_all(bindings: Sequence[List[Optional[int]]],
                     derived: Set[EncodedTriple]) -> None:
            return None

        return drop_all

    s_check = s_var and (s_val not in nonliteral_slots
                         and s_val not in uri_slots)
    p_check = p_var and p_val not in uri_slots
    if not s_check and not p_check:
        # nothing left to verify per binding: fold whole blocks into
        # the set with a generator the C update loop drives, with the
        # dominant head shapes (variable s/o around a constant or
        # variable p) specialized to direct index expressions
        if s_var and o_var:
            if p_var:
                def update_all(bindings: Sequence[List[Optional[int]]],
                               derived: Set[EncodedTriple]) -> None:
                    derived.update((b[s_val], b[p_val], b[o_val])
                                   for b in bindings)
            else:
                def update_all(bindings: Sequence[List[Optional[int]]],
                               derived: Set[EncodedTriple]) -> None:
                    derived.update((b[s_val], p_val, b[o_val])
                                   for b in bindings)
        else:
            def update_all(bindings: Sequence[List[Optional[int]]],
                           derived: Set[EncodedTriple]) -> None:
                derived.update((b[s_val] if s_var else s_val,
                                b[p_val] if p_var else p_val,
                                b[o_val] if o_var else o_val)
                               for b in bindings)

        return update_all

    def instantiate_block(bindings: Sequence[List[Optional[int]]],
                          derived: Set[EncodedTriple]) -> None:
        add = derived.add
        # index the kind cache directly; fall back to the growing
        # call only for identifiers minted since the cache last grew
        kind_list = kinds._kinds
        cached = len(kind_list)
        for binding in bindings:
            s = binding[s_val] if s_var else s_val
            p = binding[p_val] if p_var else p_val
            if s_var and ((kind_list[s] if s < cached else kinds(s))  # type: ignore[operator]
                          == _KIND_LITERAL):
                continue
            if p_var and ((kind_list[p] if p < cached else kinds(p))  # type: ignore[operator]
                          != _KIND_URI):
                continue
            o = binding[o_val] if o_var else o_val
            add((s, p, o))  # type: ignore[arg-type]

    return instantiate_block


def _fire_rule_batch(graph: Graph, rule, delta: Sequence[EncodedTriple],
                     kinds: _TermKinds,
                     by_predicate: Optional[Dict[int, List[EncodedTriple]]]
                     = None) -> Set[EncodedTriple]:
    """All conclusions of one rule against (graph, delta), encoded.

    Implements the semi-naive restriction: one plan per pivot atom,
    seeded with every matching delta triple, joining the remaining
    atoms against the full graph.  ``by_predicate`` (the vectorized
    engine's per-round delta grouping) narrows constant-predicate
    pivots to their own partition instead of matching the full delta.
    """
    lookup = graph.dictionary.lookup
    encode = graph.dictionary.encode
    derived: Set[EncodedTriple] = set()
    body = rule.body
    for pivot, pattern in enumerate(body):
        candidates = delta
        pre_checked: Tuple[int, ...] = ()
        if by_predicate is not None and not isinstance(pattern.p, Variable):
            identifier = lookup(pattern.p)
            if identifier is None:
                continue
            candidates = by_predicate.get(identifier, ())
            if not candidates:
                continue
            pre_checked = (1,)  # partition key == the predicate check
        pivot_variables: List[Variable] = []
        for term in pattern:
            if isinstance(term, Variable) and term not in pivot_variables:
                pivot_variables.append(term)
        remaining = [p for i, p in enumerate(body) if i != pivot]
        plan: BGPPlan = compile_bgp(graph, remaining, optimize=True,
                                    pre_bound=pivot_variables)
        if plan.empty:
            continue
        matcher = _compile_pivot(pattern, plan.slot_of, plan.nslots, lookup,
                                 pre_checked)
        if matcher is None:
            continue
        nonliteral_slots: AbstractSet[int] = frozenset()
        uri_slots: AbstractSet[int] = frozenset()
        if by_predicate is not None:
            # vectorized rounds prove head kinds from the body: a slot
            # bound from a subject position of a stored triple is never
            # a literal, one bound from a predicate position is a URI —
            # so those per-binding checks compile away entirely
            nonliteral, uris = set(), set()
            for atom in body:
                for position, term in enumerate(atom):
                    if isinstance(term, Variable):
                        slot = plan.slot_of.get(term)
                        if slot is None:
                            continue
                        if position == 0:
                            nonliteral.add(slot)
                        elif position == 1:
                            uris.add(slot)
            nonliteral_slots, uri_slots = nonliteral, uris
        instantiate_block = _compile_head(rule.head, plan.slot_of, encode,
                                          kinds, nonliteral_slots, uri_slots)
        assigns_only = getattr(matcher, "assigns_only", None)
        if assigns_only is not None:
            nslots = plan.nslots
            seeds = []
            append = seeds.append
            if len(assigns_only) == 2:
                # the dominant pivot shape (?s, const_p, ?o): two
                # direct stores per delta triple
                (pos_a, slot_a), (pos_b, slot_b) = assigns_only
                for triple in candidates:
                    seed: List[Optional[int]] = [None] * nslots
                    seed[slot_a] = triple[pos_a]
                    seed[slot_b] = triple[pos_b]
                    append(seed)
            else:
                for triple in candidates:
                    seed = [None] * nslots
                    for position, slot in assigns_only:
                        seed[slot] = triple[position]
                    append(seed)
        else:
            seeds = [seed for triple in candidates
                     if (seed := matcher(triple)) is not None]
        if not seeds:
            continue
        # block-at-a-time: the plan hands back whole binding lists and
        # the head instantiator folds each into the derived set without
        # a per-binding function call
        for block in plan.run_blocks(seeds):
            instantiate_block(block, derived)
    return derived


def saturate_batch(graph: Graph, ruleset: RuleSet, base_size: int,
                   max_rounds: Optional[int]):
    """Saturate ``graph`` in place with the set-at-a-time engine.

    Called through :func:`repro.reasoning.saturation.saturate` (which
    owns copying, tracing and metrics); returns its
    :class:`~repro.reasoning.saturation.SaturationResult`.
    """
    from .saturation import SaturationResult

    rule_counts: Dict[str, int] = {rule.name: 0 for rule in ruleset}
    round_deltas = get_metrics().histogram("saturation.round_delta")
    kinds = _TermKinds(graph.dictionary)
    # round boundaries are natural compaction points: merging the
    # delta logs up front puts the whole round's scans on the
    # single-run fast path (a no-op on the hash backend)
    compact = getattr(graph.index, "compact", None)
    token = current_token()  # serving deadline, if one is armed
    delta: List[EncodedTriple] = list(graph.index)
    rounds = 0
    while delta:
        if max_rounds is not None and rounds >= max_rounds:
            break
        if token is not None:
            # round boundaries are the engine's safe cancellation
            # points: the graph is consistent between rounds
            token.raise_if_cancelled()
        rounds += 1
        if compact is not None:
            compact()
        new_this_round: List[EncodedTriple] = []
        by_predicate: Optional[Dict[int, List[EncodedTriple]]] = None
        if kernels.vectorized():
            # partition the round's delta by predicate once: every
            # constant-predicate pivot (the common rule shape) then
            # seeds from its own partition instead of re-matching the
            # whole delta per (rule, pivot) pair
            by_predicate = {}
            for triple in delta:
                by_predicate.setdefault(triple[1], []).append(triple)
        with span("saturate.round", round=rounds) as round_span:
            for rule in ruleset:
                derived = _fire_rule_batch(graph, rule, delta, kinds,
                                           by_predicate)
                if not derived:
                    continue
                fresh = graph.add_encoded(derived)
                rule_counts[rule.name] += len(fresh)
                new_this_round.extend(fresh)
            round_span.set(delta_in=len(delta), delta_out=len(new_this_round))
        round_deltas.observe(len(new_this_round))
        delta = new_this_round
    return SaturationResult(
        graph=graph, base_size=base_size, inferred=len(graph) - base_size,
        rounds=rounds, engine="seminaive-batch", rule_counts=rule_counts,
    )
