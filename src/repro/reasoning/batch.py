"""Set-at-a-time semi-naive saturation over encoded triples.

The generic engine in :mod:`repro.reasoning.saturation` fires rules
one binding at a time: every candidate costs a decoded
:class:`~repro.rdf.triples.Triple`, a pattern match building a
``{Variable: Term}`` dict, and a re-encode on insertion.  This engine
keeps the whole semi-naive loop in identifier space: each round joins
the *entire* delta relation of a rule's pivot atom against the graph
through one compiled :class:`~repro.sparql.joins.BGPPlan` (scans plus
merge/leapfrog intersections on columnar graphs), instantiates heads
as integer triples, and lands each rule's conclusions with a single
:meth:`~repro.rdf.graph.Graph.add_encoded` batch.

Round structure, rule visibility and the semi-naive delta restriction
match the generic engine exactly, so both compute the same fixpoint in
the same number of rounds — the differential suite checks equality
triple for triple.  Works for *any* safe rule set on either backend;
``saturate`` selects it automatically for columnar graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..cancellation import current_token
from ..obs import get_metrics, span
from ..rdf.dictionary import TermDictionary
from ..rdf.graph import Graph
from ..rdf.terms import BlankNode, Term, URI, Variable
from ..rdf.triples import TriplePattern
from ..sparql.joins import BGPPlan, compile_bgp
from .rulesets import RuleSet

__all__ = ["saturate_batch"]

EncodedTriple = Tuple[int, int, int]

_KIND_URI = 0
_KIND_BLANK = 1
_KIND_LITERAL = 2


class _TermKinds:
    """Lazily-grown map from identifier to term kind.

    Head well-formedness (no literal/blank in forbidden positions) is
    a per-*term* property; caching it per identifier avoids a decode
    and two isinstance checks per candidate conclusion.
    """

    __slots__ = ("_kinds", "_dictionary")

    def __init__(self, dictionary: TermDictionary):
        self._kinds: List[int] = []
        self._dictionary = dictionary

    def __call__(self, identifier: int) -> int:
        kinds = self._kinds
        if identifier >= len(kinds):
            decode = self._dictionary.decode
            for i in range(len(kinds), identifier + 1):
                term = decode(i)
                if isinstance(term, URI):
                    kinds.append(_KIND_URI)
                elif isinstance(term, BlankNode):
                    kinds.append(_KIND_BLANK)
                else:
                    kinds.append(_KIND_LITERAL)
        return kinds[identifier]


def _compile_pivot(pattern: TriplePattern, slot_of: Dict[Variable, int],
                   nslots: int, lookup: Callable[[Term], Optional[int]]
                   ) -> Optional[Callable[[EncodedTriple],
                                          Optional[List[Optional[int]]]]]:
    """A matcher turning one delta triple into an initial binding.

    Returns None when a pivot constant is not even in the dictionary —
    no delta triple can match this round.
    """
    checks: List[Tuple[int, int]] = []      # (position, identifier)
    assigns: List[Tuple[int, int]] = []     # (position, slot)
    dup_checks: List[Tuple[int, int]] = []  # (position, slot)
    seen: Set[int] = set()
    for position, term in enumerate(pattern):
        if isinstance(term, Variable):
            slot = slot_of[term]
            if slot in seen:
                dup_checks.append((position, slot))
            else:
                seen.add(slot)
                assigns.append((position, slot))
        else:
            identifier = lookup(term)
            if identifier is None:
                return None
            checks.append((position, identifier))

    def match(triple: EncodedTriple) -> Optional[List[Optional[int]]]:
        for position, identifier in checks:
            if triple[position] != identifier:
                return None
        binding: List[Optional[int]] = [None] * nslots
        for position, slot in assigns:
            binding[slot] = triple[position]
        for position, slot in dup_checks:
            if triple[position] != binding[slot]:
                return None
        return binding

    return match


def _compile_head(head: TriplePattern, slot_of: Dict[Variable, int],
                  encode: Callable[[Term], int], kinds: _TermKinds
                  ) -> Callable[[List[Optional[int]]], Optional[EncodedTriple]]:
    """An instantiator from a full binding to an encoded conclusion.

    Mirrors :func:`repro.reasoning.rules.instantiate_head`: bindings
    that would ground a malformed triple (literal subject, non-URI
    property) yield None instead.
    """
    spec: List[Tuple[bool, int]] = []  # (is_slot, slot-or-identifier)
    for term in head:
        if isinstance(term, Variable):
            spec.append((True, slot_of[term]))
        else:
            spec.append((False, encode(term)))
    (s_var, s_val), (p_var, p_val), (o_var, o_val) = spec

    def instantiate(binding: List[Optional[int]]) -> Optional[EncodedTriple]:
        s = binding[s_val] if s_var else s_val
        p = binding[p_val] if p_var else p_val
        o = binding[o_val] if o_var else o_val
        if kinds(s) == _KIND_LITERAL or kinds(p) != _KIND_URI:  # type: ignore[arg-type]
            return None
        return (s, p, o)  # type: ignore[return-value]

    return instantiate


def _fire_rule_batch(graph: Graph, rule, delta: Sequence[EncodedTriple],
                     kinds: _TermKinds) -> Set[EncodedTriple]:
    """All conclusions of one rule against (graph, delta), encoded.

    Implements the semi-naive restriction: one plan per pivot atom,
    seeded with every matching delta triple, joining the remaining
    atoms against the full graph.
    """
    lookup = graph.dictionary.lookup
    encode = graph.dictionary.encode
    derived: Set[EncodedTriple] = set()
    body = rule.body
    for pivot, pattern in enumerate(body):
        pivot_variables: List[Variable] = []
        for term in pattern:
            if isinstance(term, Variable) and term not in pivot_variables:
                pivot_variables.append(term)
        remaining = [p for i, p in enumerate(body) if i != pivot]
        plan: BGPPlan = compile_bgp(graph, remaining, optimize=True,
                                    pre_bound=pivot_variables)
        if plan.empty:
            continue
        matcher = _compile_pivot(pattern, plan.slot_of, plan.nslots, lookup)
        if matcher is None:
            continue
        instantiate = _compile_head(rule.head, plan.slot_of, encode, kinds)
        seeds = [seed for triple in delta
                 if (seed := matcher(triple)) is not None]
        if not seeds:
            continue
        for binding in plan.run_seeds(seeds):
            conclusion = instantiate(binding)
            if conclusion is not None and conclusion not in derived:
                derived.add(conclusion)
    return derived


def saturate_batch(graph: Graph, ruleset: RuleSet, base_size: int,
                   max_rounds: Optional[int]):
    """Saturate ``graph`` in place with the set-at-a-time engine.

    Called through :func:`repro.reasoning.saturation.saturate` (which
    owns copying, tracing and metrics); returns its
    :class:`~repro.reasoning.saturation.SaturationResult`.
    """
    from .saturation import SaturationResult

    rule_counts: Dict[str, int] = {rule.name: 0 for rule in ruleset}
    round_deltas = get_metrics().histogram("saturation.round_delta")
    kinds = _TermKinds(graph.dictionary)
    # round boundaries are natural compaction points: merging the
    # delta logs up front puts the whole round's scans on the
    # single-run fast path (a no-op on the hash backend)
    compact = getattr(graph.index, "compact", None)
    token = current_token()  # serving deadline, if one is armed
    delta: List[EncodedTriple] = list(graph.index)
    rounds = 0
    while delta:
        if max_rounds is not None and rounds >= max_rounds:
            break
        if token is not None:
            # round boundaries are the engine's safe cancellation
            # points: the graph is consistent between rounds
            token.raise_if_cancelled()
        rounds += 1
        if compact is not None:
            compact()
        new_this_round: List[EncodedTriple] = []
        with span("saturate.round", round=rounds) as round_span:
            for rule in ruleset:
                derived = _fire_rule_batch(graph, rule, delta, kinds)
                if not derived:
                    continue
                fresh = graph.add_encoded(derived)
                rule_counts[rule.name] += len(fresh)
                new_this_round.extend(fresh)
            round_span.set(delta_in=len(delta), delta_out=len(new_this_round))
        round_deltas.observe(len(new_this_round))
        delta = new_this_round
    return SaturationResult(
        graph=graph, base_size=base_size, inferred=len(graph) - base_size,
        rounds=rounds, engine="seminaive-batch", rule_counts=rule_counts,
    )
