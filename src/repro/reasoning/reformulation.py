"""Query reformulation: rewriting BGP queries w.r.t. RDFS constraints.

The second technique of Section II-B: leave the graph unchanged and
rewrite the query ``q`` into ``qref`` such that evaluating ``qref``
against the original graph yields exactly the answers of ``q`` against
the saturation:  ``qref(G) = q(G∞)``.

Following the database fragment of [12] (Goasdoué–Manolescu–Roatiş,
EDBT 2013), reformulation targets instance-level entailment and
assumes the (small) *schema closure* is materialized in the queried
graph — re-closing the schema after a schema update is cheap and is
what the :class:`~repro.db.Database` facade does.  Under that contract
the engine is sound and complete for the ρdf rule set, including
queries with variables in class and property positions (the extension
"blurring the distinction between constants and classes/properties").

Two algorithms produce the same union of conjunctive queries:

* ``closure`` (default) — per-atom, single-step rewriting against the
  schema's cached transitive closures; the result stays *factorized*
  (one alternative set per atom) so the UCQ need not be expanded to be
  evaluated, only counted.
* ``fixpoint`` — the literal algorithm of [12]: breadth-first
  application of single direct-constraint rewrite steps at the query
  level, deduplicating via canonical forms.  Exponentially slower to
  *produce* on deep hierarchies (it enumerates the expanded UCQ), kept
  for conformance testing and the ABL-JOIN ablation.

Not covered (documented restriction, as in [12]): graphs whose schema
constrains the RDFS vocabulary itself ("meta-schema"); saturation
handles those, reformulation refuses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterator, List, Optional, Set, Tuple

from ..obs import get_metrics, span
from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import Literal, Term, Variable, fresh_variable
from ..rdf.triples import TriplePattern
from ..schema import SCHEMA_PROPERTIES, Schema
from ..sparql.ast import BGPQuery, canonical_form

__all__ = ["Reformulation", "FactorizedVariant", "reformulate",
           "reformulate_fixpoint", "atom_alternatives", "expand_bindings"]


# ----------------------------------------------------------------------
# per-atom rewriting (the closure-based algorithm)
# ----------------------------------------------------------------------

def atom_alternatives(atom: TriplePattern, schema: Schema) -> List[TriplePattern]:
    """All single atoms whose explicit matches cover the atom's
    entailed matches, given a materialized schema closure.

    For ``(s, rdf:type, c)``: the subclasses of ``c`` (rdfs9), plus
    ``(s, p, _)`` for every property whose effective domain reaches
    ``c`` (rdfs7∘rdfs2∘rdfs9) and ``(_, p, s)`` for effective ranges
    (rdfs3).  For ``(s, p, o)``: the subproperties of ``p`` (rdfs7).
    The atom itself is always the first alternative.

    Results are memoized on the schema (cleared on any schema
    mutation); the fresh variables inside cached domain/range rewrites
    are shared across reuses, which is sound because they are
    existential — ``∃f p(s,f)`` names the same condition whichever
    variant (or repeated atom) carries it.
    """
    cached = schema.memo_get(("alternatives", atom))
    if cached is not None:
        get_metrics().counter("reformulation.rewrite_cache_hits").inc()
        return list(cached)  # type: ignore[call-overload]
    get_metrics().counter("reformulation.rewrite_cache_misses").inc()
    alternatives = _atom_alternatives_uncached(atom, schema)
    schema.memo_set(("alternatives", atom), tuple(alternatives))
    return alternatives


def _atom_alternatives_uncached(atom: TriplePattern,
                                schema: Schema) -> List[TriplePattern]:
    alternatives: List[TriplePattern] = [atom]
    seen: Set[TriplePattern] = {atom}
    prop = atom.p
    if isinstance(prop, Variable):
        return alternatives
    if prop == RDF.type:
        cls = atom.o
        if isinstance(cls, Variable) or isinstance(cls, Literal):
            return alternatives
        for subclass in schema.subclasses(cls):
            candidate = TriplePattern(atom.s, RDF.type, subclass)
            if candidate not in seen:
                seen.add(candidate)
                alternatives.append(candidate)
        for p in schema.properties_with_domain(cls):
            candidate = TriplePattern(atom.s, p, fresh_variable())
            alternatives.append(candidate)
        for p in schema.properties_with_range(cls):
            candidate = TriplePattern(fresh_variable(), p, atom.s)
            alternatives.append(candidate)
        return alternatives
    if prop in SCHEMA_PROPERTIES:
        # schema-level atoms are answered by the materialized closure
        return alternatives
    for subproperty in schema.subproperties(prop):
        candidate = TriplePattern(atom.s, subproperty, atom.o)
        if candidate not in seen:
            seen.add(candidate)
            alternatives.append(candidate)
    return alternatives


# ----------------------------------------------------------------------
# query-level binding expansion for variable class/property positions
# ----------------------------------------------------------------------

def _property_binding_candidates(schema: Schema) -> List[Term]:
    """Properties that can head an *inferred* instance triple: targets
    of some subPropertyOf chain (rdfs7), plus rdf:type (rdfs2/3/9)."""
    candidates: List[Term] = [RDF.type]
    for prop in sorted(schema.properties(), key=lambda t: t.sort_key()):
        if schema.subproperties(prop):
            candidates.append(prop)
    return candidates


def _class_binding_candidates(schema: Schema) -> List[Term]:
    """Classes whose memberships can be inferred (non-identity rewrites)."""
    candidates: List[Term] = []
    for cls in sorted(schema.classes(), key=lambda t: t.sort_key()):
        if (schema.subclasses(cls) or schema.properties_with_domain(cls)
                or schema.properties_with_range(cls)):
            candidates.append(cls)
    return candidates


def expand_bindings(query: BGPQuery, schema: Schema) -> List[BGPQuery]:
    """Specialize variable property/class positions to schema constants.

    An atom with a variable in property position only retrieves
    *explicit* triples when evaluated; to also retrieve inferred ones,
    the variable is bound, query-wide, to each schema constant that can
    head an inference, and each specialization is rewritten further.
    The unspecialized query is always kept (it covers the explicit
    matches).  Distinguished variables keep their binding via
    ``preset``.

    Expansions are memoized on the schema per query (cleared on any
    schema mutation): repeated serving-layer evaluations of the same
    query skip the whole recursion.
    """
    memo_key = ("expand", query)
    cached = schema.memo_get(memo_key)
    if cached is not None:
        get_metrics().counter("reformulation.rewrite_cache_hits").inc()
        return list(cached)  # type: ignore[call-overload]
    get_metrics().counter("reformulation.rewrite_cache_misses").inc()
    property_candidates = _property_binding_candidates(schema)
    class_candidates = _class_binding_candidates(schema)
    results: List[BGPQuery] = []
    seen: Set[tuple] = set()

    def emit(candidate: BGPQuery) -> None:
        key = canonical_form(candidate)
        if key not in seen:
            seen.add(key)
            results.append(candidate)

    def expand(current: BGPQuery, index: int) -> None:
        if index >= len(current.patterns):
            emit(current)
            return
        atom = current.patterns[index]
        if isinstance(atom.p, Variable):
            # keep the generic branch, then each specialization
            expand(current, index + 1)
            for candidate in property_candidates:
                bound = current.substitute({atom.p: candidate})
                # re-examine the same atom: rdf:type may expose a
                # variable class position
                expand(bound, index)
            return
        if atom.p == RDF.type and isinstance(atom.o, Variable):
            expand(current, index + 1)
            for candidate in class_candidates:
                bound = current.substitute({atom.o: candidate})
                expand(bound, index + 1)
            return
        expand(current, index + 1)

    expand(query, 0)
    schema.memo_set(memo_key, tuple(results))
    return results


# ----------------------------------------------------------------------
# the factorized reformulation object
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FactorizedVariant:
    """One binding-specialization of the query, with per-atom
    alternative sets.  Expanding the cross product of the alternatives
    yields this variant's share of the UCQ."""

    query: BGPQuery
    alternatives: Tuple[Tuple[TriplePattern, ...], ...]

    def conjunct_count(self) -> int:
        count = 1
        for atom_alternatives_ in self.alternatives:
            count *= len(atom_alternatives_)
        return count

    def conjuncts(self) -> Iterator[BGPQuery]:
        for combination in product(*self.alternatives):
            yield BGPQuery(combination, self.query.distinguished,
                           self.query.preset, self.query.distinct,
                           self.query.limit)


@dataclass
class Reformulation:
    """The reformulated query ``qref``: a union of conjunctive queries,
    kept factorized per variant.

    ``ucq_size`` is the number of BGPs in the fully expanded union —
    the "syntactic size" the paper blames for costly evaluation; the
    factorized form is what the optimized evaluator consumes.
    """

    original: BGPQuery
    schema: Schema
    variants: List[FactorizedVariant] = field(default_factory=list)

    @property
    def ucq_size(self) -> int:
        return sum(variant.conjunct_count() for variant in self.variants)

    @property
    def variant_count(self) -> int:
        return len(self.variants)

    def to_ucq(self, deduplicate: bool = True) -> List[BGPQuery]:
        """Expand to the explicit union of conjunctive queries."""
        conjuncts: List[BGPQuery] = []
        seen: Set[tuple] = set()
        for variant in self.variants:
            for conjunct in variant.conjuncts():
                if not deduplicate:
                    conjuncts.append(conjunct)
                    continue
                key = canonical_form(conjunct)
                if key not in seen:
                    seen.add(key)
                    conjuncts.append(conjunct)
        return conjuncts

    def to_minimized_ucq(self) -> List[BGPQuery]:
        """The expanded union with contained conjuncts removed.

        Applies conjunctive-query containment (see
        :mod:`repro.sparql.containment`) on top of the canonical-form
        dedup; the answer set is provably unchanged, the evaluated
        union is smaller.  Worth it when the union is evaluated many
        times; the minimization itself is quadratic in the number of
        conjuncts with an NP homomorphism check inside (cheap at
        typical conjunct sizes).
        """
        from ..sparql.containment import minimize_ucq

        return minimize_ucq(self.to_ucq())

    def summary(self) -> str:
        return (f"reformulation of {self.original.to_sparql()!r}: "
                f"{self.variant_count} variant(s), UCQ size {self.ucq_size}")


def reformulate(query: BGPQuery, schema: Schema) -> Reformulation:
    """Reformulate ``query`` w.r.t. ``schema`` (closure algorithm).

    The contract (see module docstring): evaluating the result against
    a graph whose schema closure is materialized returns ``q(G∞)``.
    """
    with span("reformulate", atoms=len(query.patterns)) as sp:
        metrics = get_metrics()
        fanout = metrics.histogram("reformulation.atom_fanout")
        result = Reformulation(original=query, schema=schema)
        for variant_query in expand_bindings(query, schema):
            alternatives = tuple(
                tuple(atom_alternatives(atom, schema))
                for atom in variant_query.patterns
            )
            for atom_set in alternatives:
                fanout.observe(len(atom_set))
            result.variants.append(FactorizedVariant(variant_query, alternatives))
        ucq_size = result.ucq_size
        sp.set(variants=result.variant_count, ucq_size=ucq_size)
        metrics.counter("reformulation.calls").inc()
        metrics.histogram("reformulation.variants").observe(result.variant_count)
        metrics.histogram("reformulation.ucq_size").observe(ucq_size)
    return result


# ----------------------------------------------------------------------
# the literal fixpoint algorithm of [12]
# ----------------------------------------------------------------------

def _single_steps(query: BGPQuery, schema: Schema) -> Iterator[BGPQuery]:
    """All queries reachable from ``query`` by ONE rewrite step using
    one DIRECT schema constraint (rules of [12], Section 4)."""
    for index, atom in enumerate(query.patterns):
        prop = atom.p
        if isinstance(prop, Variable) or prop in SCHEMA_PROPERTIES:
            continue
        if prop == RDF.type:
            cls = atom.o
            if isinstance(cls, Variable) or isinstance(cls, Literal):
                continue
            for triple in schema.triples():
                if triple.p == RDFS.subClassOf and triple.o == cls:
                    yield query.replace_pattern(
                        index, TriplePattern(atom.s, RDF.type, triple.s))
                elif triple.p == RDFS.domain and triple.o == cls:
                    yield query.replace_pattern(
                        index, TriplePattern(atom.s, triple.s, fresh_variable()))
                elif triple.p == RDFS.range and triple.o == cls:
                    yield query.replace_pattern(
                        index, TriplePattern(fresh_variable(), triple.s, atom.s))
        else:
            for triple in schema.triples():
                if triple.p == RDFS.subPropertyOf and triple.o == prop:
                    yield query.replace_pattern(
                        index, TriplePattern(atom.s, triple.s, atom.o))


def reformulate_fixpoint(query: BGPQuery, schema: Schema,
                         max_conjuncts: Optional[int] = None) -> List[BGPQuery]:
    """The breadth-first reformulation of [12], producing the expanded
    UCQ directly.  Provided for conformance testing and ablations;
    equivalent (up to duplicates) to ``reformulate(...).to_ucq()``.

    ``max_conjuncts`` guards runaway expansions in interactive use.
    """
    with span("reformulate.fixpoint", atoms=len(query.patterns)) as sp:
        conjuncts: List[BGPQuery] = []
        seen: Set[tuple] = set()
        frontier: List[BGPQuery] = []
        for specialized in expand_bindings(query, schema):
            key = canonical_form(specialized)
            if key not in seen:
                seen.add(key)
                conjuncts.append(specialized)
                frontier.append(specialized)
        while frontier:
            if max_conjuncts is not None and len(conjuncts) > max_conjuncts:
                raise RuntimeError(
                    f"reformulation exceeded {max_conjuncts} conjuncts")
            next_frontier: List[BGPQuery] = []
            for current in frontier:
                for rewritten in _single_steps(current, schema):
                    key = canonical_form(rewritten)
                    if key not in seen:
                        seen.add(key)
                        conjuncts.append(rewritten)
                        next_frontier.append(rewritten)
            frontier = next_frontier
        sp.set(ucq_size=len(conjuncts))
        get_metrics().histogram("reformulation.ucq_size").observe(len(conjuncts))
    return conjuncts
