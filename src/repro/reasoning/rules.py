"""Declarative entailment rules (the paper's Figure 2 and friends).

An entailment rule derives one new triple from a conjunction of
existing ones — immediate entailment ``⊢iRDF`` is a single application
of such a rule, and ``G ⊢RDF s p o`` holds iff a sequence of immediate
entailments leads from ``G`` to ``s p o`` (Section II-A).

Rules are *safe* range-restricted Horn clauses over triple patterns:
every head variable occurs in the body, so no rule invents fresh
blank nodes.  This is the fragment all of the paper's reformulation
algorithms target, and it keeps saturation finite.

The same :class:`Rule` objects drive the forward-chaining saturation
engine, the counting/DRed maintenance algorithms and the translation
to Datalog.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import Variable
from ..rdf.triples import Substitution, Triple, TriplePattern

__all__ = ["Rule", "Derivation", "instantiate_head"]


class Rule:
    """A safe Horn rule ``body1 ∧ … ∧ bodyN ⊢ head`` over triple patterns.

    >>> from repro.rdf.namespaces import RDF, RDFS
    >>> from repro.rdf.terms import Variable as V
    >>> rdfs9 = Rule(
    ...     "rdfs9",
    ...     body=[TriplePattern(V("c1"), RDFS.subClassOf, V("c2")),
    ...           TriplePattern(V("s"), RDF.type, V("c1"))],
    ...     head=TriplePattern(V("s"), RDF.type, V("c2")),
    ... )
    """

    __slots__ = ("name", "body", "head", "description", "_hash")

    name: str
    body: Tuple[TriplePattern, ...]
    head: TriplePattern
    description: str
    _hash: int

    def __init__(self, name: str, body: Sequence[TriplePattern],
                 head: TriplePattern, description: str = "") -> None:
        if not body:
            raise ValueError("rule body must contain at least one pattern")
        body_tuple = tuple(body)
        body_variables: Set[Variable] = set()
        for pattern in body_tuple:
            body_variables |= pattern.variables()
        unsafe = head.variables() - body_variables
        if unsafe:
            names = ", ".join(sorted(str(v) for v in unsafe))
            raise ValueError(f"rule {name!r} is unsafe: head variables {names} "
                             f"do not occur in the body")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "body", body_tuple)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "description", description)
        object.__setattr__(self, "_hash", hash((name, body_tuple, head)))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover - guard
        raise AttributeError("Rule is immutable")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rule) and other.name == self.name
                and other.body == self.body and other.head == self.head)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = " AND ".join(p.n3().rstrip(" .") for p in self.body)
        return f"<Rule {self.name}: {body} => {self.head.n3().rstrip(' .')}>"

    def variables(self) -> FrozenSet[Variable]:
        result: Set[Variable] = set(self.head.variables())
        for pattern in self.body:
            result |= pattern.variables()
        return frozenset(result)

    def arity(self) -> int:
        """Number of body atoms."""
        return len(self.body)

    # ------------------------------------------------------------------
    # evaluation helpers used by the saturation engines
    # ------------------------------------------------------------------

    def match_body(self, graph: Graph,
                   binding: Optional[Substitution] = None,
                   skip: int = -1) -> Iterator[Substitution]:
        """All substitutions making every body atom (except ``skip``)
        hold in ``graph``, extending ``binding``.

        Atoms are evaluated left to right with the current binding
        pushed into each subsequent atom (index-nested-loop join).
        """
        remaining = [p for i, p in enumerate(self.body) if i != skip]

        def recurse(index: int, current: Substitution) -> Iterator[Substitution]:
            if index == len(remaining):
                yield current
                return
            for extended in graph.match(remaining[index], current):
                yield from recurse(index + 1, extended)

        yield from recurse(0, dict(binding) if binding else {})

    def fire(self, graph: Graph,
             delta: Optional[Sequence[Triple]] = None
             ) -> Iterator["Derivation"]:
        """Yield the derivations of one immediate-entailment round.

        With ``delta`` given, performs the semi-naive restriction: each
        produced derivation uses at least one delta triple, by matching
        every body atom in turn against the delta and joining the rest
        against the full graph.  Duplicate derivations (same rule, same
        ground body) are suppressed within the call.
        """
        seen: Set[Derivation] = set()
        if delta is None:
            for binding in self.match_body(graph):
                derivation = self._derive(binding)
                if derivation is not None and derivation not in seen:
                    seen.add(derivation)
                    yield derivation
            return
        for pivot, pattern in enumerate(self.body):
            for triple in delta:
                binding = pattern.matches(triple)
                if binding is None:
                    continue
                for full_binding in self.match_body(graph, binding, skip=pivot):
                    derivation = self._derive(full_binding)
                    if derivation is not None and derivation not in seen:
                        seen.add(derivation)
                        yield derivation

    def fire_conclusions(self, graph: Graph,
                         delta: Optional[Sequence[Triple]] = None
                         ) -> Iterator[Triple]:
        """Like :meth:`fire` but yields bare conclusions.

        Skips justification materialization and intra-call dedup — the
        saturation engine's ``graph.add`` already ignores duplicates —
        which makes this the hot-path variant.
        """
        if delta is None:
            for binding in self.match_body(graph):
                conclusion = instantiate_head(self.head, binding)
                if conclusion is not None:
                    yield conclusion
            return
        for pivot, pattern in enumerate(self.body):
            for triple in delta:
                binding = pattern.matches(triple)
                if binding is None:
                    continue
                for full_binding in self.match_body(graph, binding, skip=pivot):
                    conclusion = instantiate_head(self.head, full_binding)
                    if conclusion is not None:
                        yield conclusion

    def _derive(self, binding: Substitution) -> Optional["Derivation"]:
        conclusion = instantiate_head(self.head, binding)
        if conclusion is None:
            return None
        premises = tuple(pattern.substitute(binding).to_triple()
                         for pattern in self.body)
        return Derivation(self.name, premises, conclusion)


def instantiate_head(head: TriplePattern, binding: Substitution) -> Optional[Triple]:
    """Ground ``head`` under ``binding``; None if not well-formed.

    RDF entailment only ever produces well-formed triples; a binding
    that would, e.g., place a literal in subject position (possible
    when a rule variable ranges over objects) yields nothing.
    """
    try:
        grounded = head.substitute(binding)
    except TypeError:
        # the binding would place e.g. a literal in subject position
        return None
    if not grounded.is_ground():
        return None
    try:
        return grounded.to_triple()
    except TypeError:
        return None


class Derivation:
    """One immediate entailment step: ``premises ⊢_rule conclusion``.

    Used as the justification record by the counting-based truth
    maintenance and DRed algorithms.
    """

    __slots__ = ("rule_name", "premises", "conclusion", "_hash")

    rule_name: str
    premises: Tuple[Triple, ...]
    conclusion: Triple
    _hash: int

    def __init__(self, rule_name: str, premises: Tuple[Triple, ...],
                 conclusion: Triple) -> None:
        object.__setattr__(self, "rule_name", rule_name)
        object.__setattr__(self, "premises", premises)
        object.__setattr__(self, "conclusion", conclusion)
        object.__setattr__(self, "_hash", hash((rule_name, premises, conclusion)))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover - guard
        raise AttributeError("Derivation is immutable")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Derivation)
                and other.rule_name == self.rule_name
                and other.premises == self.premises
                and other.conclusion == self.conclusion)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        premises = ", ".join(p.n3().rstrip(" .") for p in self.premises)
        return (f"<Derivation {self.rule_name}: {premises} "
                f"|- {self.conclusion.n3().rstrip(' .')}>")
