"""Graph saturation (closure): forward-chaining to the fixpoint.

Saturation pre-computes and adds to an RDF graph all its implicit
triples; query answering then reduces to plain evaluation against the
saturated graph ``G∞`` (Section II-B).  The saturation is the unique
fixpoint of repeatedly applying immediate entailment, and
``G ⊢RDF s p o  iff  s p o ∈ G∞`` — an invariant the test suite checks.

Two engines are provided:

* ``seminaive`` — the generic engine: works for *any* rule set
  (RDFS-full, RDFS-Plus, user-defined rules) using semi-naive
  evaluation (each round only joins the previous round's delta, as in
  Datalog engines and OWLIM's forward chaining).
* ``schema-aware`` — the fast path for the ρdf fragment: first closes
  the schema (rdfs5/rdfs11), then derives all instance consequences in
  a single pass per triple using the schema's cached effective-domain/
  range and superclass/superproperty closures.  Dramatically faster,
  but only complete when the schema vocabulary itself is unconstrained
  (no "meta-schema" triples); ``saturate`` falls back automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..cancellation import current_token
from ..obs import get_metrics, span
from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import Literal, URI
from ..rdf.triples import Triple
from ..schema import SCHEMA_PROPERTIES, Schema
from .rulesets import RDFS_DEFAULT, RHO_DF, RuleSet

__all__ = ["SaturationResult", "saturate", "saturation_of", "entails",
           "is_saturated", "has_meta_schema"]


@dataclass
class SaturationResult:
    """Outcome of a saturation run.

    ``graph`` is the saturated graph (the input graph itself when
    ``in_place=True``).  ``inferred`` counts the implicit triples made
    explicit; ``rounds`` the semi-naive iterations (1 for the
    schema-aware engine); ``rule_counts`` the productive derivations
    per rule (schema-aware runs report aggregate pseudo-rules).
    """

    graph: Graph
    base_size: int
    inferred: int = 0
    rounds: int = 0
    engine: str = "seminaive"
    seconds: float = 0.0
    rule_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def saturated_size(self) -> int:
        return self.base_size + self.inferred

    @property
    def blowup(self) -> float:
        """Saturated size over base size (1.0 = nothing inferred)."""
        if self.base_size == 0:
            return 1.0
        return self.saturated_size / self.base_size

    def summary(self) -> str:
        return (f"saturation[{self.engine}]: {self.base_size} -> "
                f"{self.saturated_size} triples (+{self.inferred}, "
                f"x{self.blowup:.2f}) in {self.rounds} round(s), "
                f"{self.seconds * 1000:.1f} ms")


def has_meta_schema(graph: Graph) -> bool:
    """True when the RDFS vocabulary is itself constrained by the graph.

    E.g. ``rdfs:subClassOf rdfs:domain rdfs:Class`` or a property
    declared as a super-property of ``rdf:type``.  In that regime the
    schema changes while instance rules fire, so the single-pass
    schema-aware engine is not complete and the generic engine is used.

    The answer is cached on the graph (keyed by its version counter):
    ``saturate`` asks up to three times per run, incremental
    maintenance once per update batch, and the scan itself touches
    dozens of index lookups.
    """
    return bool(graph.cached_derived("has_meta_schema", _compute_meta_schema))


def _compute_meta_schema(graph: Graph) -> bool:
    special = set(SCHEMA_PROPERTIES) | {RDF.type}
    for term in special:
        for p in SCHEMA_PROPERTIES:
            for __ in graph.triples(term, p, None):
                return True
            for __ in graph.triples(None, p, term):
                return True
    return False


def saturate(graph: Graph, ruleset: RuleSet = RDFS_DEFAULT,
             in_place: bool = False, engine: str = "auto",
             max_rounds: Optional[int] = None) -> SaturationResult:
    """Compute the saturation ``G∞`` of ``graph`` under ``ruleset``.

    ``engine`` is ``"auto"`` (schema-aware when the rule set is ρdf and
    the graph has no meta-schema; otherwise the set-at-a-time
    ``seminaive-batch`` engine on columnar graphs and ``seminaive`` on
    hash graphs), ``"seminaive"``, ``"seminaive-batch"`` or
    ``"schema-aware"``.  With ``in_place=False`` (default) the input
    graph is left untouched and a saturated copy is returned.
    ``max_rounds`` optionally caps semi-naive iterations (for tests and
    diagnostics); the fixpoint is reached when a round adds nothing.
    """
    target = graph if in_place else graph.copy()
    base_size = len(target)

    rhodf_rules = frozenset(RHO_DF.rules)
    is_rhodf = frozenset(ruleset.rules) == rhodf_rules

    with span("saturate", ruleset=ruleset.name, base_size=base_size) as sp:
        if engine == "auto":
            if is_rhodf and not has_meta_schema(target):
                engine = "schema-aware"
            elif target.backend == "columnar":
                engine = "seminaive-batch"
            else:
                engine = "seminaive"
        sp.set(engine=engine)
        if engine in ("schema-aware", "set-at-a-time"):
            if not is_rhodf:
                raise ValueError(f"the {engine} engine only supports the "
                                 f"rhodf/rdfs-default rule set")
            if has_meta_schema(target):
                raise ValueError("graph constrains the RDFS vocabulary itself; "
                                 "use the semi-naive engine")
            if engine == "schema-aware":
                result = _saturate_schema_aware(target, base_size)
            else:
                result = _saturate_setwise(target, base_size)
        elif engine == "seminaive":
            result = _saturate_seminaive(target, ruleset, base_size, max_rounds)
        elif engine == "seminaive-batch":
            from .batch import saturate_batch
            result = saturate_batch(target, ruleset, base_size, max_rounds)
        else:
            raise ValueError(f"unknown engine {engine!r}; expected 'auto', "
                             f"'seminaive', 'seminaive-batch', "
                             f"'schema-aware' or 'set-at-a-time'")
        sp.set(inferred=result.inferred, rounds=result.rounds)
        _record_saturation_metrics(result)

    # the summary's wall-clock figure IS the span's duration: one
    # timing source, so the trace and the result can never disagree
    result.seconds = sp.duration
    return result


def _record_saturation_metrics(result: SaturationResult) -> None:
    metrics = get_metrics()
    metrics.counter("saturation.runs", engine=result.engine).inc()
    metrics.counter("saturation.inferred").inc(result.inferred)
    metrics.histogram("saturation.rounds").observe(result.rounds)
    metrics.histogram("saturation.blowup").observe(result.blowup)
    for rule, count in result.rule_counts.items():
        if count:
            metrics.counter("saturation.rule_fired", rule=rule).inc(count)


def saturation_of(graph: Graph, ruleset: RuleSet = RDFS_DEFAULT) -> Graph:
    """Convenience: return the saturated copy ``G∞`` of ``graph``."""
    return saturate(graph, ruleset).graph


def entails(graph: Graph, triple: Triple,
            ruleset: RuleSet = RDFS_DEFAULT) -> bool:
    """Decide ``G ⊢RDF s p o`` by membership in the saturation."""
    if triple in graph:
        return True
    return triple in saturate(graph, ruleset).graph


def is_saturated(graph: Graph, ruleset: RuleSet = RDFS_DEFAULT) -> bool:
    """True iff no rule can derive a triple absent from ``graph``."""
    for rule in ruleset:
        # offline check, not on the serving path
        for conclusion in rule.fire_conclusions(graph):  # sc: allow(SC303)
            if conclusion not in graph:
                return False
    return True


# ----------------------------------------------------------------------
# generic semi-naive engine
# ----------------------------------------------------------------------

def _saturate_seminaive(graph: Graph, ruleset: RuleSet, base_size: int,
                        max_rounds: Optional[int]) -> SaturationResult:
    rule_counts: Dict[str, int] = {rule.name: 0 for rule in ruleset}
    round_deltas = get_metrics().histogram("saturation.round_delta")
    token = current_token()  # serving deadline, if one is armed
    delta: List[Triple] = list(graph)
    rounds = 0
    while delta:
        if max_rounds is not None and rounds >= max_rounds:
            break
        if token is not None:
            # round boundaries are the engine's safe cancellation
            # points: the graph is consistent between rounds
            token.raise_if_cancelled()
        rounds += 1
        new_this_round: List[Triple] = []
        with span("saturate.round", round=rounds) as round_span:
            for rule in ruleset:
                # materialize before inserting: fire_conclusions scans
                # the graph's indexes lazily, and adding while a scan
                # is live corrupts the iteration (seen with rules whose
                # head shares the body's predicate, e.g. symmetry)
                for conclusion in list(rule.fire_conclusions(graph, delta)):
                    if graph.add(conclusion):
                        rule_counts[rule.name] += 1
                        new_this_round.append(conclusion)
            round_span.set(delta_in=len(delta), delta_out=len(new_this_round))
        round_deltas.observe(len(new_this_round))
        delta = new_this_round
    return SaturationResult(
        graph=graph, base_size=base_size, inferred=len(graph) - base_size,
        rounds=rounds, engine="seminaive", rule_counts=rule_counts,
    )


# ----------------------------------------------------------------------
# set-at-a-time in-memory engine (Section II-D's [28])
# ----------------------------------------------------------------------

def _saturate_setwise(graph: Graph, base_size: int) -> SaturationResult:
    from .setwise import setwise_closure

    inferred = 0
    for triple in setwise_closure(graph):
        if graph.add(triple):
            inferred += 1
    return SaturationResult(
        graph=graph, base_size=base_size, inferred=inferred, rounds=1,
        engine="set-at-a-time", rule_counts={"setwise": inferred},
    )


# ----------------------------------------------------------------------
# schema-aware fast path for the rhodf fragment
# ----------------------------------------------------------------------

def _saturate_schema_aware(graph: Graph, base_size: int) -> SaturationResult:
    rule_counts = {"schema-closure": 0, "rdfs7": 0, "rdfs2": 0,
                   "rdfs3": 0, "rdfs9": 0}
    schema = Schema.from_graph(graph)

    # 1. close the schema itself (rdfs5 + rdfs11)
    for triple in list(schema.closure_triples()):
        if graph.add(triple):
            schema.add(triple)
            rule_counts["schema-closure"] += 1

    # 2. one pass over the instance triples; the schema's cached
    #    effective closures fold the rule interactions (7∘2, 2∘9, ...)
    #    into the per-triple expansion, so no fixpoint loop is needed.
    pending_types: Set[Triple] = set()
    for triple in list(graph):
        s, p, o = triple.s, triple.p, triple.o
        if p == RDF.type:
            for cls in schema.superclasses(o):
                if cls != o:
                    pending_types.add(Triple(s, RDF.type, cls))  # type: ignore[arg-type]
            continue
        if p in SCHEMA_PROPERTIES:
            continue
        for q in schema.superproperties(p):
            if q != p and isinstance(q, URI):
                if graph.add(Triple(s, q, o)):
                    rule_counts["rdfs7"] += 1
        for cls in schema.effective_domains(p):
            pending_types.add(Triple(s, RDF.type, cls))  # type: ignore[arg-type]
        if not isinstance(o, Literal):
            for cls in schema.effective_ranges(p):
                pending_types.add(Triple(o, RDF.type, cls))  # type: ignore[arg-type]

    # 3. type triples gathered above already include their rdfs9
    #    closure for domain/range derivations; explicit rdf:type data
    #    was closed in the loop.  Add them all.
    for triple in pending_types:
        if graph.add(triple):
            rule_counts["rdfs9"] += 1

    return SaturationResult(
        graph=graph, base_size=base_size, inferred=len(graph) - base_size,
        rounds=1, engine="schema-aware", rule_counts=rule_counts,
    )
