"""Set-at-a-time in-memory saturation.

Section II-D notes that "as memory sizes grow larger, in-memory RDFS
reasoning is also attracting interest" [28].  In-memory engines change
the evaluation style: instead of deriving triple-at-a-time like the
semi-naive engine, they operate on whole *extensions* at once —
the extension of every class (a set of encoded subjects) and of every
property (a set of encoded pairs) — and push those sets through the
schema DAG with set unions:

* rdfs7: a property's pair-set is unioned into each superproperty's,
  walking the subproperty DAG bottom-up (one union per edge);
* rdfs2/rdfs3: each property's subject (object) projection is unioned
  into its declared domains' (ranges') class extensions;
* rdfs9: class extensions are unioned bottom-up along the subclass DAG.

On hierarchies this does one set-union per schema edge instead of one
index probe per instance triple, which is the wholesale/batch trade-off
the ABL-SETWISE ablation measures.

Like the schema-aware engine this is a ρdf fast path: the rule set is
fixed and meta-schema graphs are rejected (callers fall back to the
generic engine — :func:`repro.reasoning.saturation.saturate` handles
the dispatch when asked for ``engine="set-at-a-time"``).

Cyclic hierarchies are handled by condensing strongly connected
components first: members of a cycle share one extension.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF
from ..rdf.terms import Literal, Term, URI
from ..rdf.triples import Triple
from ..schema import SCHEMA_PROPERTIES, Schema

__all__ = ["setwise_closure"]


def _condensed_topological_order(
        nodes: Iterable[Term],
        direct_supers: Dict[Term, FrozenSet[Term]]
) -> Tuple[List[FrozenSet[Term]], Dict[Term, int]]:
    """Condense the 'is-sub-of' graph into SCCs and order them so that
    every component precedes the components it points *to* (its supers).

    Returns the component list plus a node -> component-index map.
    """
    index_of: Dict[Term, int] = {}
    low_of: Dict[Term, int] = {}
    on_stack: Set[Term] = set()
    stack: List[Term] = []
    counter = [0]
    components: List[FrozenSet[Term]] = []
    component_of: Dict[Term, int] = {}

    def strongconnect(root: Term) -> None:
        work: List[Tuple[Term, List[Term]]] = [
            (root, list(direct_supers.get(root, ())))]
        index_of[root] = low_of[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            if successors:
                successor = successors.pop()
                if successor not in index_of:
                    index_of[successor] = low_of[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor,
                                 list(direct_supers.get(successor, ()))))
                elif successor in on_stack:
                    low_of[node] = min(low_of[node], index_of[successor])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low_of[parent] = min(low_of[parent], low_of[node])
                if low_of[node] == index_of[node]:
                    component: Set[Term] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    for member in component:
                        component_of[member] = len(components)
                    components.append(frozenset(component))

    for node in nodes:
        if node not in index_of:
            strongconnect(node)
    # Tarjan emits components in reverse topological order of the
    # condensation (a component is emitted after everything it reaches);
    # here edges point sub -> super, so emitted order = supers first.
    # We want subs first (push extensions upward), i.e. reverse it.
    order = list(reversed(range(len(components))))
    reordered = [components[i] for i in order]
    remap = {old: new for new, old in enumerate(order)}
    component_of = {node: remap[i] for node, i in component_of.items()}
    return reordered, component_of


def setwise_closure(graph: Graph) -> Set[Triple]:
    """All ρdf-entailed triples of ``graph`` (including the ones
    already explicit), computed set-at-a-time.

    The caller unions the result into the graph; this function does not
    mutate its input.
    """
    schema = Schema.from_graph(graph)

    # --- gather extensions ------------------------------------------------
    class_members: Dict[Term, Set[Term]] = {}   # class -> subjects
    property_pairs: Dict[Term, Set[Tuple[Term, Term]]] = {}

    for triple in graph:
        if triple.p == RDF.type:
            class_members.setdefault(triple.o, set()).add(triple.s)
        elif triple.p not in SCHEMA_PROPERTIES:
            property_pairs.setdefault(triple.p, set()).add((triple.s, triple.o))

    derived: Set[Triple] = set()

    # --- schema closure (rdfs5 / rdfs11), including cycle reflexivity ----
    for cls in schema.classes():
        for superclass in schema.superclasses(cls):
            derived.add(Triple(cls, _RDFS_SUBCLASS, superclass))  # type: ignore[arg-type]
    for prop in schema.properties():
        for superproperty in schema.superproperties(prop):
            derived.add(Triple(prop, _RDFS_SUBPROPERTY, superproperty))  # type: ignore[arg-type]
    for triple in schema.triples():
        derived.add(triple)

    # --- rdfs7: push pair-sets up the subproperty condensation ------------
    prop_nodes = set(schema.properties()) | set(property_pairs)
    prop_supers = {p: schema._sub_property.get(p, set())  # noqa: SLF001
                   for p in prop_nodes}
    prop_components, prop_component_of = _condensed_topological_order(
        prop_nodes, {p: frozenset(s) for p, s in prop_supers.items()})

    component_pairs: List[Set[Tuple[Term, Term]]] = [set() for __ in prop_components]
    for prop, pairs in property_pairs.items():
        component_pairs[prop_component_of[prop]] |= pairs
    # push along condensation edges, subs first
    for index, component in enumerate(prop_components):
        pairs = component_pairs[index]
        if not pairs:
            continue
        for member in component:
            for superproperty in prop_supers.get(member, ()):
                target = prop_component_of[superproperty]
                if target != index:
                    component_pairs[target] |= pairs

    effective_pairs: Dict[Term, Set[Tuple[Term, Term]]] = {}
    for index, component in enumerate(prop_components):
        for member in component:
            effective_pairs[member] = component_pairs[index]
    for prop, pairs in effective_pairs.items():
        if isinstance(prop, URI):
            for s, o in pairs:
                derived.add(Triple(s, prop, o))

    # --- rdfs2 / rdfs3: project pair-sets into class extensions -----------
    for prop in prop_nodes:
        pairs = effective_pairs.get(prop, set())
        if not pairs:
            continue
        for cls in schema.domains(prop):
            class_members.setdefault(cls, set()).update(s for s, __ in pairs)
        for cls in schema.ranges(prop):
            class_members.setdefault(cls, set()).update(
                o for __, o in pairs if not isinstance(o, Literal))

    # --- rdfs9: push member-sets up the subclass condensation -------------
    class_nodes = set(schema.classes()) | set(class_members)
    class_supers = {c: schema._sub_class.get(c, set())  # noqa: SLF001
                    for c in class_nodes}
    class_components, class_component_of = _condensed_topological_order(
        class_nodes, {c: frozenset(s) for c, s in class_supers.items()})

    component_members: List[Set[Term]] = [set() for __ in class_components]
    for cls, members in class_members.items():
        component_members[class_component_of[cls]] |= members
    for index, component in enumerate(class_components):
        members = component_members[index]
        if not members:
            continue
        for member_class in component:
            for superclass in class_supers.get(member_class, ()):
                target = class_component_of[superclass]
                if target != index:
                    component_members[target] |= members

    for index, component in enumerate(class_components):
        members = component_members[index]
        for cls in component:
            for subject in members:
                if not isinstance(subject, Literal):
                    derived.add(Triple(subject, RDF.type, cls))  # type: ignore[arg-type]

    return derived


# late-bound to avoid a circular import at module load
from ..rdf.namespaces import RDFS as _RDFS_NS  # noqa: E402

_RDFS_SUBCLASS = _RDFS_NS.subClassOf
_RDFS_SUBPROPERTY = _RDFS_NS.subPropertyOf
