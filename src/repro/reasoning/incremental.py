"""Incremental saturation maintenance under updates.

Saturation "requires time to be computed, space to be stored, and must
be recomputed upon updates" (Section II-B); whether maintaining it
beats re-saturating — and how many query runs amortize it — is exactly
what Figure 3's instance/schema insertion/deletion thresholds measure.

This module provides the two classical maintenance algorithms, both
driven by the same declarative rules as the saturation engine, so
*schema* updates need no special treatment: a schema triple is simply a
premise with a large fan-out.

* :class:`DRedReasoner` — *delete and re-derive* (as in Oracle's and
  OWLIM-style materialization maintenance [9], [13]):
  deletions are over-approximated by forward propagation, then
  over-deleted triples that survive on other support are re-derived.
  Correct for every rule set and schema, including cyclic hierarchies.
* :class:`CountingReasoner` — justification bookkeeping in the spirit
  of Broekstra & Kampman's truth maintenance for RDF Schema [11]:
  every derivation is recorded; a derived triple is removed when its
  last justification dies.  Faster deletes than DRed, but — as in the
  original paper — unsound when justifications can be cyclic, which for
  RDFS means cyclic subclass/subproperty hierarchies; such deletions
  are refused with :class:`CyclicSchemaError`.

Insertions use the same semi-naive delta propagation in both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..obs import get_metrics, span
from ..rdf.graph import Graph
from ..rdf.triples import Triple
from ..schema import Schema, strongly_connected_components
from .rules import Derivation
from .rulesets import RDFS_DEFAULT, RuleSet
from .saturation import saturate

__all__ = ["MaintenanceResult", "IncrementalReasoner", "DRedReasoner",
           "CountingReasoner", "CyclicSchemaError", "one_step_derivations"]


class CyclicSchemaError(RuntimeError):
    """Raised when counting-based deletion meets a cyclic hierarchy."""


@dataclass
class MaintenanceResult:
    """Outcome of one maintenance operation (insert or delete batch)."""

    operation: str
    algorithm: str
    requested: int
    explicit_changed: int
    implicit_added: int = 0
    implicit_removed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    seconds: float = 0.0

    def summary(self) -> str:
        parts = [f"{self.operation}[{self.algorithm}]: {self.requested} requested,"
                 f" {self.explicit_changed} explicit"]
        if self.implicit_added:
            parts.append(f"+{self.implicit_added} implicit")
        if self.implicit_removed:
            parts.append(f"-{self.implicit_removed} implicit")
        if self.operation == "delete" and self.algorithm == "dred":
            parts.append(f"(overdeleted {self.overdeleted}, rederived {self.rederived})")
        parts.append(f"in {self.seconds * 1000:.1f} ms")
        return " ".join(parts)


def one_step_derivations(graph: Graph, triple: Triple,
                         ruleset: RuleSet) -> Iterable[Derivation]:
    """All single-rule derivations of ``triple`` from ``graph``.

    Backward step: unify each rule head with ``triple`` and solve the
    body against the graph.  Used by DRed's re-derivation phase.
    """
    for rule in ruleset:
        binding = rule.head.matches(triple)
        if binding is None:
            continue
        for full_binding in rule.match_body(graph, binding):
            derivation = rule._derive(full_binding)  # noqa: SLF001
            if derivation is not None and derivation.conclusion == triple:
                yield derivation


class IncrementalReasoner:
    """Base class: a saturated graph kept consistent under updates.

    Holds the set of *explicit* triples (the user's assertions) and the
    saturated graph ``G∞``.  Subclasses implement deletion;
    insertion's semi-naive delta propagation is shared.

    The maintained invariant — checked exhaustively by the test suite —
    is ``self.graph == saturate(explicit_graph())`` after any update
    sequence.
    """

    algorithm = "abstract"

    def __init__(self, graph: Graph, ruleset: RuleSet = RDFS_DEFAULT):
        self.ruleset = ruleset
        self.explicit: Set[Triple] = set(graph)
        self.graph: Graph = graph.copy()
        #: the (added, removed) triples of the last insert()/delete(),
        #: explicit *and* implicit — the delta consumers (per-view
        #: incremental maintenance) need the triples themselves, not
        #: just the counts in :class:`MaintenanceResult`
        self.last_delta: Tuple[List[Triple], List[Triple]] = ([], [])
        self._initial_saturation()

    def _initial_saturation(self) -> None:
        saturate(self.graph, self.ruleset, in_place=True)

    @classmethod
    def resume(cls, explicit: Iterable[Triple], saturated: Graph,
               ruleset: RuleSet = RDFS_DEFAULT) -> "IncrementalReasoner":
        """Adopt an already-saturated graph instead of re-saturating.

        The durable-storage recovery path persists ``G∞`` and reopens
        it here, so a restart costs a WAL-tail replay rather than a
        full fixpoint (the difference BENCH_pr6 measures).  The caller
        asserts the invariant ``saturated == saturate(explicit)``;
        ``saturated`` ownership transfers to the reasoner.
        """
        with span("maintenance.resume", algorithm=cls.algorithm,
                  triples=len(saturated)):
            reasoner = cls.__new__(cls)
            reasoner.ruleset = ruleset
            reasoner.explicit = set(explicit)
            reasoner.graph = saturated
            reasoner.last_delta = ([], [])
            reasoner._resume_derived_state()
        return reasoner

    def _resume_derived_state(self) -> None:
        """Hook: rebuild per-algorithm bookkeeping after :meth:`resume`
        (the saturated graph itself is already in place)."""

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def explicit_graph(self) -> Graph:
        """The graph of explicit triples only (the user's assertions)."""
        result = Graph(namespaces=self.graph.namespaces.copy())
        result.update(self.explicit)
        return result

    def __len__(self) -> int:
        return len(self.graph)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self.graph

    def insert(self, triples: Iterable[Triple]) -> MaintenanceResult:
        """Insert explicit triples and propagate their consequences."""
        batch = list(triples)
        with span("maintenance.insert", algorithm=self.algorithm,
                  requested=len(batch)) as sp:
            delta: List[Triple] = []
            explicit_changed = 0
            for triple in batch:
                if triple not in self.explicit:
                    self.explicit.add(triple)
                    explicit_changed += 1
                if self.graph.add(triple):
                    delta.append(triple)
                    self._on_explicit_added(triple)
            implicit = self._propagate_insertions(delta)
            implicit_added = len(implicit)
            self.last_delta = (delta + implicit, [])
            sp.set(implicit_added=implicit_added)
            result = MaintenanceResult(
                operation="insert", algorithm=self.algorithm,
                requested=len(batch), explicit_changed=explicit_changed,
                implicit_added=implicit_added,
            )
            self._record_metrics(result)
        result.seconds = sp.duration
        return result

    def _record_metrics(self, result: MaintenanceResult) -> None:
        metrics = get_metrics()
        metrics.counter("maintenance.operations", operation=result.operation,
                        algorithm=result.algorithm).inc()
        metrics.counter("maintenance.implicit_added").inc(result.implicit_added)
        metrics.counter("maintenance.implicit_removed").inc(
            result.implicit_removed)
        if result.operation == "delete" and result.algorithm == "dred":
            metrics.counter("maintenance.overdeleted").inc(result.overdeleted)
            metrics.counter("maintenance.rederived").inc(result.rederived)

    def delete(self, triples: Iterable[Triple]) -> MaintenanceResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared insertion machinery
    # ------------------------------------------------------------------

    #: Subclasses that need per-derivation bookkeeping set this to True,
    #: which routes insertion through the justification-recording path.
    records_justifications = False

    def _propagate_insertions(self, delta: List[Triple]) -> List[Triple]:
        """Semi-naive insertion propagation; returns implicit additions.

        Downstream justifications depend on *triples*, not on how many
        ways those triples are derived, so a new justification for an
        already-present triple needs no further propagation.
        """
        implicit_added: List[Triple] = []
        while delta:
            next_delta: List[Triple] = []
            for rule in self.ruleset:
                # materialize before inserting: fire() scans the graph's
                # indexes lazily, and adding while a scan is live skips
                # entries (the delta-log cursor goes stale)
                if self.records_justifications:
                    for derivation in list(rule.fire(self.graph, delta)):
                        self._record(derivation)
                        if self.graph.add(derivation.conclusion):
                            implicit_added.append(derivation.conclusion)
                            next_delta.append(derivation.conclusion)
                else:
                    for conclusion in list(
                            rule.fire_conclusions(self.graph, delta)):
                        if self.graph.add(conclusion):
                            implicit_added.append(conclusion)
                            next_delta.append(conclusion)
            delta = next_delta
        return implicit_added

    def _record(self, derivation: Derivation) -> bool:
        """Record a justification; return True when it is new."""
        return False

    def _on_explicit_added(self, triple: Triple) -> None:
        """Hook: a previously-absent explicit triple entered the graph."""

    def _check_consistency(self) -> bool:
        """Debug helper: compare against a from-scratch saturation."""
        return self.graph == saturate(self.explicit_graph(), self.ruleset).graph


class DRedReasoner(IncrementalReasoner):
    """Delete-and-rederive maintenance (correct for all rule sets)."""

    algorithm = "dred"

    def delete(self, triples: Iterable[Triple]) -> MaintenanceResult:
        """Delete explicit triples; over-delete then re-derive."""
        batch = list(triples)
        with span("maintenance.delete", algorithm=self.algorithm,
                  requested=len(batch)) as sp:
            explicit_changed = 0
            seeds: List[Triple] = []
            for triple in batch:
                if triple in self.explicit:
                    self.explicit.discard(triple)
                    explicit_changed += 1
                    seeds.append(triple)

            # Phase 1 — over-deletion: propagate, over the pre-deletion
            # graph, every conclusion reachable from a deleted premise.
            with span("maintenance.overdelete"):
                snapshot = self.graph.copy()
                overdeleted: Set[Triple] = set()
                queue: List[Triple] = []
                for seed in seeds:
                    if seed not in self.explicit and seed in self.graph:
                        overdeleted.add(seed)
                        queue.append(seed)
                while queue:
                    next_queue: List[Triple] = []
                    for rule in self.ruleset:
                        for conclusion in rule.fire_conclusions(snapshot, queue):
                            if conclusion in overdeleted or conclusion in self.explicit:
                                continue
                            if conclusion in self.graph:
                                overdeleted.add(conclusion)
                                next_queue.append(conclusion)
                    queue = next_queue
                for triple in overdeleted:
                    self.graph.remove(triple)

            # Phase 2 — re-derivation: an over-deleted triple survives if it
            # still has a one-step derivation from the remaining graph;
            # re-insertions then propagate semi-naively and can only
            # resurrect other over-deleted triples.
            with span("maintenance.rederive"):
                rederived: List[Triple] = []
                for triple in overdeleted:
                    for __ in one_step_derivations(self.graph, triple,
                                                   self.ruleset):
                        self.graph.add(triple)
                        rederived.append(triple)
                        break
                delta = list(rederived)
                while delta:
                    next_delta: List[Triple] = []
                    for rule in self.ruleset:
                        # materialize: adding mid-scan corrupts the
                        # live delta-log cursor (see _propagate_insertions)
                        for conclusion in list(
                                rule.fire_conclusions(self.graph, delta)):
                            if conclusion not in self.graph:
                                self.graph.add(conclusion)
                                rederived.append(conclusion)
                                next_delta.append(conclusion)
                    delta = next_delta

            rederived_set = set(rederived)
            self.last_delta = ([], [t for t in overdeleted
                                    if t not in rederived_set])
            removed = len(overdeleted) - len(rederived_set & overdeleted)
            explicit_removed = sum(1 for t in seeds if t not in self.graph)
            sp.set(overdeleted=len(overdeleted), rederived=len(set(rederived)))
            result = MaintenanceResult(
                operation="delete", algorithm=self.algorithm,
                requested=len(batch), explicit_changed=explicit_changed,
                implicit_removed=removed - explicit_removed,
                overdeleted=len(overdeleted), rederived=len(set(rederived)),
            )
            self._record_metrics(result)
        result.seconds = sp.duration
        return result


class CountingReasoner(IncrementalReasoner):
    """Justification-counting maintenance (Broekstra–Kampman style).

    Keeps, per derived triple, the set of its derivations, plus the
    inverted premise → derivations index; deletion cascades along the
    justification graph.  Deletion requires the subclass/subproperty
    hierarchies to be acyclic (else justifications can be mutually
    supporting and the cascade under-deletes); cyclic hierarchies raise
    :class:`CyclicSchemaError` — use :class:`DRedReasoner` there.
    """

    algorithm = "counting"

    records_justifications = True

    def __init__(self, graph: Graph, ruleset: RuleSet = RDFS_DEFAULT):
        self._justifications: Dict[Triple, Set[Derivation]] = {}
        self._uses: Dict[Triple, Set[Derivation]] = {}
        super().__init__(graph, ruleset)

    # -- initial saturation records every derivation -------------------

    def _initial_saturation(self) -> None:
        delta = list(self.graph)
        self._propagate_insertions(delta)

    def _resume_derived_state(self) -> None:
        # justifications are not persisted; one recording pass over the
        # saturated graph re-derives them (every conclusion is already
        # present, so nothing propagates — it only fills the indexes)
        self._justifications = {}
        self._uses = {}
        self._propagate_insertions(list(self.graph))

    def _record(self, derivation: Derivation) -> bool:
        bucket = self._justifications.setdefault(derivation.conclusion, set())
        if derivation in bucket:
            return False
        bucket.add(derivation)
        for premise in derivation.premises:
            self._uses.setdefault(premise, set()).add(derivation)
        return True

    # -- deletion -------------------------------------------------------

    def justification_count(self, triple: Triple) -> int:
        """Number of currently recorded derivations of ``triple``."""
        return len(self._justifications.get(triple, ()))

    def delete(self, triples: Iterable[Triple]) -> MaintenanceResult:
        batch = set(triples)
        with span("maintenance.delete", algorithm=self.algorithm,
                  requested=len(batch)) as sp:
            self._ensure_acyclic()
            explicit_changed = 0
            queue: List[Triple] = []
            for triple in batch:
                if triple in self.explicit:
                    self.explicit.discard(triple)
                    explicit_changed += 1
                    if not self._justifications.get(triple):
                        queue.append(triple)

            implicit_removed = 0
            explicit_seed_removed = 0
            gone: List[Triple] = []
            while queue:
                triple = queue.pop()
                if triple not in self.graph:
                    continue
                if triple in self.explicit or self._justifications.get(triple):
                    continue
                self.graph.remove(triple)
                gone.append(triple)
                if triple in batch:
                    explicit_seed_removed += 1
                else:
                    implicit_removed += 1
                # invalidate every derivation this triple participates in
                for derivation in self._uses.pop(triple, set()):
                    conclusion = derivation.conclusion
                    bucket = self._justifications.get(conclusion)
                    if bucket is None:
                        continue
                    bucket.discard(derivation)
                    for premise in derivation.premises:
                        if premise != triple:
                            uses = self._uses.get(premise)
                            if uses is not None:
                                uses.discard(derivation)
                    if not bucket:
                        del self._justifications[conclusion]
                        if conclusion not in self.explicit:
                            queue.append(conclusion)
                self._justifications.pop(triple, None)

            self.last_delta = ([], gone)
            sp.set(implicit_removed=implicit_removed)
            result = MaintenanceResult(
                operation="delete", algorithm=self.algorithm,
                requested=len(batch), explicit_changed=explicit_changed,
                implicit_removed=implicit_removed,
            )
            self._record_metrics(result)
        result.seconds = sp.duration
        return result

    def _ensure_acyclic(self) -> None:
        schema = Schema.from_graph(self.graph)
        cycles = (strongly_connected_components(schema._sub_class)  # noqa: SLF001
                  or strongly_connected_components(schema._sub_property))  # noqa: SLF001
        if cycles:
            raise CyclicSchemaError(
                "counting-based deletion is unsound under cyclic "
                "subclass/subproperty hierarchies; use DRedReasoner"
            )
