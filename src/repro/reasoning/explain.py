"""Explanations: why is a triple entailed?

Section II-C notes that OWLIM computes "the relevant justifications
w.r.t. an update" to maintain its materialization; justifications are
also what users ask for when an unexpected answer appears ("why is Tom
a mammal?").  This module derives them on demand:

* :func:`explain` — one full proof tree from explicit triples to the
  goal, built by backward chaining over the rule set;
* :func:`all_justifications` — every *immediate* derivation of the
  goal (the direct supports);
* :func:`minimal_support` — a minimal set of explicit triples that
  suffices to entail the goal (useful for debugging data: deleting any
  one of them, absent other supports, retracts the conclusion).

Proof search runs over the saturated graph, so each backward step only
ever needs one rule application — termination is structural, with a
visited-set guarding cyclic schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.triples import Triple
from .incremental import one_step_derivations
from .rules import Derivation
from .rulesets import RDFS_DEFAULT, RuleSet
from .saturation import saturate

__all__ = ["ProofNode", "explain", "all_justifications", "minimal_support",
           "is_explicit_in"]


@dataclass(frozen=True)
class ProofNode:
    """A node of a proof tree.

    Leaves (``rule_name is None``) are explicit triples; inner nodes
    carry the rule that derived ``triple`` from the children's triples.
    """

    triple: Triple
    rule_name: Optional[str] = None
    premises: Tuple["ProofNode", ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.rule_name is None

    def depth(self) -> int:
        """Leaf depth 0; otherwise 1 + max child depth."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.premises)

    def leaves(self) -> FrozenSet[Triple]:
        """The explicit triples this proof rests on."""
        if self.is_leaf:
            return frozenset((self.triple,))
        result: Set[Triple] = set()
        for child in self.premises:
            result |= child.leaves()
        return frozenset(result)

    def size(self) -> int:
        """Number of rule applications in the tree."""
        if self.is_leaf:
            return 0
        return 1 + sum(child.size() for child in self.premises)

    def pretty(self, indent: int = 0) -> str:
        """Render the tree, one derivation step per line."""
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}{self.triple.n3().rstrip(' .')}   [explicit]"
        lines = [f"{pad}{self.triple.n3().rstrip(' .')}   [{self.rule_name}]"]
        for child in self.premises:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


def is_explicit_in(graph: Graph, triple: Triple) -> bool:
    """Membership test, named for readability at call sites."""
    return triple in graph


def explain(graph: Graph, triple: Triple,
            ruleset: RuleSet = RDFS_DEFAULT,
            saturated: Optional[Graph] = None) -> Optional[ProofNode]:
    """One proof tree for ``triple`` from ``graph``'s explicit triples.

    Returns ``None`` when the triple is not entailed.  ``saturated``
    may pass a pre-computed ``G∞`` to avoid re-saturating per call.
    """
    if triple in graph:
        return ProofNode(triple)
    closure = saturated if saturated is not None else saturate(graph, ruleset).graph
    if triple not in closure:
        return None
    return _prove(graph, closure, triple, ruleset, frozenset())


def _prove(graph: Graph, closure: Graph, goal: Triple, ruleset: RuleSet,
           in_progress: FrozenSet[Triple]) -> Optional[ProofNode]:
    if goal in graph:
        return ProofNode(goal)
    if goal in in_progress:
        return None  # cyclic support cannot ground out here
    blocked = in_progress | {goal}
    for derivation in one_step_derivations(closure, goal, ruleset):
        children: List[ProofNode] = []
        for premise in derivation.premises:
            child = _prove(graph, closure, premise, ruleset, blocked)
            if child is None:
                break
            children.append(child)
        else:
            return ProofNode(goal, derivation.rule_name, tuple(children))
    return None


def all_justifications(graph: Graph, triple: Triple,
                       ruleset: RuleSet = RDFS_DEFAULT,
                       saturated: Optional[Graph] = None
                       ) -> List[Derivation]:
    """Every immediate derivation of ``triple`` over the saturation.

    These are exactly the justification records the counting reasoner
    maintains incrementally; here they are recomputed on demand.
    """
    closure = saturated if saturated is not None else saturate(graph, ruleset).graph
    if triple not in closure:
        return []
    return list(one_step_derivations(closure, triple, ruleset))


def minimal_support(graph: Graph, triple: Triple,
                    ruleset: RuleSet = RDFS_DEFAULT) -> Optional[FrozenSet[Triple]]:
    """A minimal explicit-triple set entailing ``triple``.

    Starts from one proof's leaves and greedily drops triples that are
    not needed (the remaining set still entails the goal).  Minimal,
    not minimum: finding a smallest support is NP-hard in general.
    """
    proof = explain(graph, triple, ruleset)
    if proof is None:
        return None
    support = set(proof.leaves())
    for candidate in sorted(support):
        trimmed = support - {candidate}
        reduced = Graph()
        reduced.update(trimmed)
        if triple in saturate(reduced, ruleset, in_place=True).graph:
            support = trimmed
    return frozenset(support)
