"""Standard entailment rule sets.

The paper stresses that both techniques are parameterized by "the
subset of features from the RDF standard which is supported": the
expressive power of the rule set determines saturation cost, saturation
size and reformulation size alike.  Four rule sets are provided:

* :data:`RHO_DF` — the ρdf core: the four instance rules of the paper's
  Figure 2 (rdfs2, rdfs3, rdfs7, rdfs9) plus schema-level transitivity
  (rdfs5, rdfs11).  This is the fragment of [12] from which Figure 3's
  thresholds are computed, and the fragment the reformulation engine is
  complete for.
* :data:`RDFS_DEFAULT` — alias of :data:`RHO_DF` (the sensible default).
* :data:`RDFS_FULL` — adds the remaining standard RDFS rules (rdf1,
  rdfs4a/4b, rdfs6, rdfs8, rdfs10, rdfs12, rdfs13), which type every
  resource and property; they inflate the saturation dramatically.
* :data:`RDFS_PLUS` — ρdf plus the OWL subset that AllegroGraph's
  RDFS++ and Virtuoso support (Section II-C): inverse, symmetric and
  transitive properties, class/property equivalence and ``owl:sameAs``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from ..rdf.namespaces import OWL, RDF, RDFS
from ..rdf.terms import Variable as V
from ..rdf.triples import TriplePattern as TP
from .rules import Rule

__all__ = ["RuleSet", "RHO_DF", "RDFS_DEFAULT", "RDFS_FULL", "RDFS_PLUS",
           "FIGURE2_RULES", "RULESETS", "get_ruleset"]


class RuleSet:
    """An immutable named collection of entailment rules."""

    __slots__ = ("name", "rules", "description", "_by_name")

    def __init__(self, name: str, rules: Iterable[Rule], description: str = ""):
        rule_tuple = tuple(rules)
        names = [rule.name for rule in rule_tuple]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in rule set {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "rules", rule_tuple)
        object.__setattr__(self, "description", description)
        object.__setattr__(self, "_by_name", {rule.name: rule for rule in rule_tuple})

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("RuleSet is immutable")

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __contains__(self, rule: object) -> bool:
        if isinstance(rule, Rule):
            return rule in self.rules
        return rule in self._by_name

    def __getitem__(self, name: str) -> Rule:
        return self._by_name[name]

    def __repr__(self) -> str:
        return f"<RuleSet {self.name}: {len(self.rules)} rules>"

    def __eq__(self, other) -> bool:
        return isinstance(other, RuleSet) and other.rules == self.rules

    def __hash__(self) -> int:
        return hash(self.rules)

    def extend(self, name: str, rules: Iterable[Rule], description: str = "") -> "RuleSet":
        """A new rule set with ``rules`` appended."""
        return RuleSet(name, self.rules + tuple(rules), description)

    def rule_names(self) -> Tuple[str, ...]:
        return tuple(rule.name for rule in self.rules)


# ----------------------------------------------------------------------
# The instance entailment rules of the paper's Figure 2
# ----------------------------------------------------------------------

_RDFS2 = Rule(
    "rdfs2",
    body=[TP(V("p"), RDFS.domain, V("c")), TP(V("s"), V("p"), V("o"))],
    head=TP(V("s"), RDF.type, V("c")),
    description="domain typing: p rdfs:domain c AND s p o |- s rdf:type c",
)

_RDFS3 = Rule(
    "rdfs3",
    body=[TP(V("p"), RDFS.range, V("c")), TP(V("s"), V("p"), V("o"))],
    head=TP(V("o"), RDF.type, V("c")),
    description="range typing: p rdfs:range c AND s p o |- o rdf:type c",
)

_RDFS7 = Rule(
    "rdfs7",
    body=[TP(V("p1"), RDFS.subPropertyOf, V("p2")), TP(V("s"), V("p1"), V("o"))],
    head=TP(V("s"), V("p2"), V("o")),
    description="subproperty: p1 rdfs:subPropertyOf p2 AND s p1 o |- s p2 o",
)

_RDFS9 = Rule(
    "rdfs9",
    body=[TP(V("c1"), RDFS.subClassOf, V("c2")), TP(V("s"), RDF.type, V("c1"))],
    head=TP(V("s"), RDF.type, V("c2")),
    description="subclass: c1 rdfs:subClassOf c2 AND s rdf:type c1 |- s rdf:type c2",
)

#: Exactly the four immediate entailment rules shown in Figure 2.
FIGURE2_RULES: Tuple[Rule, ...] = (_RDFS9, _RDFS7, _RDFS2, _RDFS3)

# ----------------------------------------------------------------------
# Schema-level transitivity (needed for a complete ρdf closure)
# ----------------------------------------------------------------------

_RDFS5 = Rule(
    "rdfs5",
    body=[TP(V("p1"), RDFS.subPropertyOf, V("p2")),
          TP(V("p2"), RDFS.subPropertyOf, V("p3"))],
    head=TP(V("p1"), RDFS.subPropertyOf, V("p3")),
    description="subproperty transitivity",
)

_RDFS11 = Rule(
    "rdfs11",
    body=[TP(V("c1"), RDFS.subClassOf, V("c2")),
          TP(V("c2"), RDFS.subClassOf, V("c3"))],
    head=TP(V("c1"), RDFS.subClassOf, V("c3")),
    description="subclass transitivity",
)

RHO_DF = RuleSet(
    "rhodf",
    (_RDFS5, _RDFS11) + FIGURE2_RULES,
    description="ρdf core: Figure 2 instance rules + schema transitivity; "
                "the fragment of [12] used for Figure 3's thresholds",
)

#: The library default.
RDFS_DEFAULT = RuleSet("rdfs-default", RHO_DF.rules, RHO_DF.description)

# ----------------------------------------------------------------------
# Remaining standard RDFS rules
# ----------------------------------------------------------------------

_RDF1 = Rule(
    "rdf1",
    body=[TP(V("s"), V("p"), V("o"))],
    head=TP(V("p"), RDF.type, RDF.Property),
    description="every used property is an rdf:Property",
)

_RDFS4A = Rule(
    "rdfs4a",
    body=[TP(V("s"), V("p"), V("o"))],
    head=TP(V("s"), RDF.type, RDFS.Resource),
    description="every subject is an rdfs:Resource",
)

_RDFS4B = Rule(
    "rdfs4b",
    body=[TP(V("s"), V("p"), V("o"))],
    head=TP(V("o"), RDF.type, RDFS.Resource),
    description="every non-literal object is an rdfs:Resource",
)

_RDFS6 = Rule(
    "rdfs6",
    body=[TP(V("p"), RDF.type, RDF.Property)],
    head=TP(V("p"), RDFS.subPropertyOf, V("p")),
    description="property reflexivity",
)

_RDFS8 = Rule(
    "rdfs8",
    body=[TP(V("c"), RDF.type, RDFS.Class)],
    head=TP(V("c"), RDFS.subClassOf, RDFS.Resource),
    description="every class is a subclass of rdfs:Resource",
)

_RDFS10 = Rule(
    "rdfs10",
    body=[TP(V("c"), RDF.type, RDFS.Class)],
    head=TP(V("c"), RDFS.subClassOf, V("c")),
    description="class reflexivity",
)

_RDFS12 = Rule(
    "rdfs12",
    body=[TP(V("p"), RDF.type, RDFS.ContainerMembershipProperty)],
    head=TP(V("p"), RDFS.subPropertyOf, RDFS.member),
    description="container membership properties are sub-properties of rdfs:member",
)

_RDFS13 = Rule(
    "rdfs13",
    body=[TP(V("d"), RDF.type, RDFS.Datatype)],
    head=TP(V("d"), RDFS.subClassOf, RDFS.Literal),
    description="every datatype is a subclass of rdfs:Literal",
)

RDFS_FULL = RHO_DF.extend(
    "rdfs-full",
    (_RDF1, _RDFS4A, _RDFS4B, _RDFS6, _RDFS8, _RDFS10, _RDFS12, _RDFS13),
    description="full standard RDFS rule set (minus the blank-node-"
                "generating literal rules, outside the safe fragment)",
)

# ----------------------------------------------------------------------
# RDFS-Plus: the OWL subset of AllegroGraph RDFS++ / Virtuoso (II-C)
# ----------------------------------------------------------------------

_OWL_INV1 = Rule(
    "owl-inv1",
    body=[TP(V("p"), OWL.inverseOf, V("q")), TP(V("s"), V("p"), V("o"))],
    head=TP(V("o"), V("q"), V("s")),
    description="inverse property, forward direction",
)

_OWL_INV2 = Rule(
    "owl-inv2",
    body=[TP(V("p"), OWL.inverseOf, V("q")), TP(V("s"), V("q"), V("o"))],
    head=TP(V("o"), V("p"), V("s")),
    description="inverse property, backward direction",
)

_OWL_SYM = Rule(
    "owl-sym",
    body=[TP(V("p"), RDF.type, OWL.SymmetricProperty), TP(V("s"), V("p"), V("o"))],
    head=TP(V("o"), V("p"), V("s")),
    description="symmetric property",
)

_OWL_TRANS = Rule(
    "owl-trans",
    body=[TP(V("p"), RDF.type, OWL.TransitiveProperty),
          TP(V("x"), V("p"), V("y")), TP(V("y"), V("p"), V("z"))],
    head=TP(V("x"), V("p"), V("z")),
    description="transitive property",
)

_OWL_EQC1 = Rule(
    "owl-eqc1",
    body=[TP(V("c1"), OWL.equivalentClass, V("c2"))],
    head=TP(V("c1"), RDFS.subClassOf, V("c2")),
    description="equivalent classes are mutual subclasses (1)",
)

_OWL_EQC2 = Rule(
    "owl-eqc2",
    body=[TP(V("c1"), OWL.equivalentClass, V("c2"))],
    head=TP(V("c2"), RDFS.subClassOf, V("c1")),
    description="equivalent classes are mutual subclasses (2)",
)

_OWL_EQP1 = Rule(
    "owl-eqp1",
    body=[TP(V("p1"), OWL.equivalentProperty, V("p2"))],
    head=TP(V("p1"), RDFS.subPropertyOf, V("p2")),
    description="equivalent properties are mutual subproperties (1)",
)

_OWL_EQP2 = Rule(
    "owl-eqp2",
    body=[TP(V("p1"), OWL.equivalentProperty, V("p2"))],
    head=TP(V("p2"), RDFS.subPropertyOf, V("p1")),
    description="equivalent properties are mutual subproperties (2)",
)

_OWL_SAME_SYM = Rule(
    "owl-same-sym",
    body=[TP(V("x"), OWL.sameAs, V("y"))],
    head=TP(V("y"), OWL.sameAs, V("x")),
    description="sameAs symmetry",
)

_OWL_SAME_TRANS = Rule(
    "owl-same-trans",
    body=[TP(V("x"), OWL.sameAs, V("y")), TP(V("y"), OWL.sameAs, V("z"))],
    head=TP(V("x"), OWL.sameAs, V("z")),
    description="sameAs transitivity",
)

_OWL_SAME_S = Rule(
    "owl-same-s",
    body=[TP(V("x"), OWL.sameAs, V("y")), TP(V("x"), V("p"), V("o"))],
    head=TP(V("y"), V("p"), V("o")),
    description="sameAs substitution in subject position",
)

_OWL_SAME_O = Rule(
    "owl-same-o",
    body=[TP(V("x"), OWL.sameAs, V("y")), TP(V("s"), V("p"), V("x"))],
    head=TP(V("s"), V("p"), V("y")),
    description="sameAs substitution in object position",
)

_OWL_FP = Rule(
    "owl-fp",
    body=[TP(V("p"), RDF.type, OWL.FunctionalProperty),
          TP(V("x"), V("p"), V("y")), TP(V("x"), V("p"), V("z"))],
    head=TP(V("y"), OWL.sameAs, V("z")),
    description="functional property: two values of one subject are the "
                "same individual",
)

_OWL_IFP = Rule(
    "owl-ifp",
    body=[TP(V("p"), RDF.type, OWL.InverseFunctionalProperty),
          TP(V("y"), V("p"), V("x")), TP(V("z"), V("p"), V("x"))],
    head=TP(V("y"), OWL.sameAs, V("z")),
    description="inverse-functional property: two subjects sharing a "
                "value are the same individual",
)

RDFS_PLUS = RHO_DF.extend(
    "rdfs-plus",
    (_OWL_INV1, _OWL_INV2, _OWL_SYM, _OWL_TRANS,
     _OWL_EQC1, _OWL_EQC2, _OWL_EQP1, _OWL_EQP2,
     _OWL_SAME_SYM, _OWL_SAME_TRANS, _OWL_SAME_S, _OWL_SAME_O,
     _OWL_FP, _OWL_IFP),
    description="ρdf + the OWL subset of AllegroGraph RDFS++ / Virtuoso "
                "(inverse/symmetric/transitive properties, equivalence, sameAs)",
)

#: Registry of the built-in rule sets, by name.
RULESETS: Dict[str, RuleSet] = {
    rs.name: rs for rs in (RHO_DF, RDFS_DEFAULT, RDFS_FULL, RDFS_PLUS)
}


def get_ruleset(name: str) -> RuleSet:
    """Look up a built-in rule set by name.

    >>> get_ruleset("rhodf").name
    'rhodf'
    """
    try:
        return RULESETS[name]
    except KeyError:
        known = ", ".join(sorted(RULESETS))
        raise KeyError(f"unknown rule set {name!r}; known: {known}") from None
