"""Semantic interval encoding of the RDFS hierarchies (LiteMat-style).

Reformulation (Section II-B) loses to saturation exactly when the
schema makes the rewriting explode: a query atom ``?x rdf:type C``
becomes a union over every subclass of ``C`` plus every property whose
effective domain/range reaches ``C``.  The LiteMat line of encoded
reasoners (Curé et al., see PAPERS.md) avoids the union altogether by
making the *identifiers* carry the hierarchy: number the subclass DAG
in DFS preorder and "C and all its subclasses" becomes a (mostly)
contiguous identifier interval — which the columnar sorted runs of
:mod:`repro.rdf.columnar` answer with a single binary-searched range
scan.

This module provides the third evaluation strategy built on that idea:

* :class:`IntervalAssignment` — DFS pre/post numbering of one
  hierarchy DAG (subclass or subproperty).  Trees yield one interval
  per node; multiple-inheritance nodes are placed under their first
  parent and contribute *extra* intervals to every other ancestor
  (duplicate-interval handling); whatever contiguity remains is
  recovered exactly by coalescing each node's closure members into
  maximal identifier runs, so the worst case degenerates to the
  explicit member set (the fallback set), never to wrong answers.
* :class:`SchemaEncoding` — both assignments plus the fingerprint of
  the schema they were derived from.
* :class:`TermRemap` — the O(n) mapping layer over
  :class:`~repro.rdf.dictionary.TermDictionary`: hierarchy terms get
  the leading identifiers in DFS preorder, everything else keeps its
  relative order after them.
* :class:`EncodedGraphView` — the graph re-encoded under the remap: a
  columnar index over remapped identifiers plus a dictionary adapter,
  duck-typing the :class:`~repro.rdf.graph.Graph` surface the join
  compiler consumes (``index``, ``dictionary``, ``count``,
  ``backend``).  Built lazily per graph version through
  :meth:`Graph.cached_derived` (key ``"encoding.view"``), so any
  mutation — in particular a schema change — invalidates it; the
  database layer keeps it warm across pure instance inserts via
  :func:`refresh_view_after_insert`.
* :func:`encoded_atom_specs` — the query-side translation: one atom
  becomes a small set of plain patterns and
  :class:`~repro.sparql.joins.IntervalPattern` atoms whose union of
  matches equals the atom's reformulation, evaluated by the
  interval-scan step of :mod:`repro.sparql.joins`.

On hash-backend graphs there is no sorted run to range-scan; the
evaluator then skips the view and the interval atoms execute by
expanding their explicit member sets against the source index (see
``_IntervalMemberScanStep``) — same answers, point lookups instead of
range scans.
"""

from __future__ import annotations

from array import array
from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple, Union)

from ..obs import get_metrics, span
from ..rdf.columnar import ColumnarTripleIndex
from ..rdf.dictionary import TermDictionary
from ..rdf.graph import Graph
from ..rdf.index import DEFAULT_ORDERS
from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import Literal, Term, Variable, fresh_variable
from ..rdf.triples import Triple, TriplePattern
from ..schema import SCHEMA_PROPERTIES, Schema, is_schema_triple
from ..sparql.joins import IntervalPattern

__all__ = ["IntervalAssignment", "SchemaEncoding", "TermRemap",
           "EncodedGraphView", "encoded_view", "refresh_view_after_insert",
           "encoded_atom_specs", "coalesce_ids", "NodeFragmentation",
           "fragmentation_report", "ENCODING_VIEW_KEY"]

#: The :meth:`Graph.cached_derived` key the view is published under.
ENCODING_VIEW_KEY = "encoding.view"


def coalesce_ids(ids: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Sorted identifiers collapsed into maximal half-open runs.

    ``[3, 4, 5, 9]`` becomes ``((3, 6), (9, 10))``.  This is where the
    duplicate-interval handling bottoms out: however scattered a
    multiple-inheritance closure is, its coalesced runs cover exactly
    its members.
    """
    runs: List[Tuple[int, int]] = []
    start = previous = None
    for value in ids:
        if previous is not None and value == previous + 1:
            previous = value
            continue
        if start is not None:
            runs.append((start, previous + 1))  # type: ignore[operator]
        start = previous = value
    if start is not None:
        runs.append((start, previous + 1))  # type: ignore[operator]
    return tuple(runs)


def _hierarchy_edges(schema: Schema, edge_property: Term
                     ) -> Tuple[Dict[Term, List[Term]], Dict[Term, int]]:
    """Direct children and parent counts of one hierarchy DAG."""
    children: Dict[Term, List[Term]] = {}
    parents: Dict[Term, int] = {}
    for triple in schema.triples():
        if triple.p != edge_property or triple.s == triple.o:
            continue
        children.setdefault(triple.o, []).append(triple.s)
        parents[triple.s] = parents.get(triple.s, 0) + 1
    return children, parents


class IntervalAssignment:
    """DFS preorder numbering of one hierarchy DAG.

    ``order[i]`` is the node with preorder position ``i``; the spanning
    forest places every node under its first parent (parents visited in
    deterministic term order), so a tree hierarchy makes each node's
    descendant closure one contiguous preorder run.  Nodes reached
    through several parents (multiple inheritance) and cycle residue
    keep a single position; their ancestors' closures then coalesce
    into more than one run — measured, not hidden, via
    :meth:`fragmentation`.
    """

    __slots__ = ("order", "index_of", "multi_parent")

    def __init__(self, order: Tuple[Term, ...],
                 multi_parent: FrozenSet[Term]):
        self.order = order
        self.index_of: Dict[Term, int] = {
            term: i for i, term in enumerate(order)}
        self.multi_parent = multi_parent

    @classmethod
    def build(cls, nodes: FrozenSet[Term], schema: Schema,
              edge_property: Term) -> "IntervalAssignment":
        children, parents = _hierarchy_edges(schema, edge_property)
        def key(term: Term) -> tuple:
            return term.sort_key()
        roots = sorted((n for n in nodes if not parents.get(n)), key=key)
        order: List[Term] = []
        seen: Set[Term] = set()

        def visit(start: Term) -> None:
            stack = [start]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                order.append(node)
                stack.extend(sorted(children.get(node, ()),
                                    key=key, reverse=True))

        for root in roots:
            visit(root)
        # non-tree residue: cycles unreachable from any root still get
        # positions (their members are mutually equivalent classes)
        for node in sorted(nodes - seen, key=key):
            visit(node)
        return cls(tuple(n for n in order if n in nodes),
                   frozenset(n for n, count in parents.items() if count > 1))

    def positions(self, members: Iterable[Term]) -> List[int]:
        index_of = self.index_of
        return sorted(index_of[m] for m in members if m in index_of)

    def fragmentation(self, node: Term, members: Iterable[Term]
                      ) -> Tuple[int, int]:
        """``(member_count, run_count)`` for the node's closure under
        this assignment — run_count == 1 is the ideal single interval;
        run_count == member_count is full degeneration to the fallback
        set."""
        positions = self.positions(members)
        return len(positions), len(coalesce_ids(positions))


class SchemaEncoding:
    """Interval assignments for both hierarchies of one schema."""

    __slots__ = ("classes", "properties", "fingerprint")

    def __init__(self, classes: IntervalAssignment,
                 properties: IntervalAssignment,
                 fingerprint: FrozenSet[Triple]):
        self.classes = classes
        self.properties = properties
        self.fingerprint = fingerprint

    @classmethod
    def build(cls, schema: Schema) -> "SchemaEncoding":
        return cls(
            IntervalAssignment.build(schema.classes(), schema,
                                     RDFS.subClassOf),
            IntervalAssignment.build(schema.properties(), schema,
                                     RDFS.subPropertyOf),
            frozenset(schema.triples()),
        )


class TermRemap:
    """A bijection re-numbering a dictionary's identifiers so hierarchy
    terms occupy the leading DFS-preorder positions.

    Classes come first (in class-DAG preorder), then properties not
    already placed (in property-DAG preorder), then every remaining
    identifier in its original relative order — an O(n) array build,
    and O(1) per-identifier translation afterwards.
    """

    __slots__ = ("old_to_new", "new_to_old")

    def __init__(self, old_to_new: array, new_to_old: array):
        self.old_to_new = old_to_new
        self.new_to_old = new_to_old

    @classmethod
    def build(cls, encoding: SchemaEncoding,
              dictionary: TermDictionary) -> "TermRemap":
        size = len(dictionary)
        lookup = dictionary.lookup
        placed = bytearray(size)
        new_to_old = array("q")
        for term in encoding.classes.order + encoding.properties.order:
            old = lookup(term)
            if old is None or placed[old]:
                continue
            placed[old] = 1
            new_to_old.append(old)
        for old in range(size):
            if not placed[old]:
                new_to_old.append(old)
        old_to_new = array("q", bytes(8 * size))
        for new, old in enumerate(new_to_old):
            old_to_new[old] = new
        return cls(old_to_new, new_to_old)

    def __len__(self) -> int:
        return len(self.new_to_old)

    def extend_identity(self, new_size: int) -> None:
        """Map identifiers allocated after the build to themselves.

        Terms interned by later instance inserts carry no hierarchy
        information, so the identity suffix keeps the bijection while
        the leading block stays interval-ordered.
        """
        for old in range(len(self.new_to_old), new_size):
            self.old_to_new.append(old)
            self.new_to_old.append(old)


class _RemappedDictionary:
    """The view's dictionary: the source dictionary seen through a
    :class:`TermRemap` (lookup and decode only — the view is
    read-only, nothing ever encodes through it)."""

    __slots__ = ("_source", "_remap")

    def __init__(self, source: TermDictionary, remap: TermRemap):
        self._source = source
        self._remap = remap

    def __len__(self) -> int:
        return len(self._remap)

    def lookup(self, term: Term) -> Optional[int]:
        old = self._source.lookup(term)
        if old is None or old >= len(self._remap.old_to_new):
            return None
        return self._remap.old_to_new[old]

    def decode(self, term_id: int) -> Term:
        try:
            old = self._remap.new_to_old[term_id]
        except IndexError:
            raise KeyError(f"unknown term id: {term_id}") from None
        return self._source.decode(old)


class EncodedGraphView:
    """The source graph re-encoded under the interval remap.

    Duck-types the read side of :class:`~repro.rdf.graph.Graph` that
    the join compiler and optimizer consume (``index``, ``dictionary``,
    ``count``, ``backend``); always columnar, whatever the source
    backend, because the whole point is sorted runs over interval-
    ordered identifiers.
    """

    __slots__ = ("source", "encoding", "remap", "_index", "_dictionary")

    def __init__(self, source: Graph, encoding: SchemaEncoding,
                 remap: TermRemap, index: ColumnarTripleIndex):
        self.source = source
        self.encoding = encoding
        self.remap = remap
        self._index = index
        self._dictionary = _RemappedDictionary(source.dictionary, remap)

    @classmethod
    def build(cls, graph: Graph) -> "EncodedGraphView":
        with span("encoding.build", triples=len(graph)) as sp:
            encoding = SchemaEncoding.build(Schema.from_graph(graph))
            remap = TermRemap.build(encoding, graph.dictionary)
            orders = (graph.index.order_names
                      if graph.backend == "columnar" else DEFAULT_ORDERS)
            index = ColumnarTripleIndex(orders)
            o2n = remap.old_to_new
            index.bulk_load([(o2n[s], o2n[p], o2n[o])
                             for s, p, o in graph.index])
            metrics = get_metrics()
            metrics.counter("encoding.builds").inc()
            metrics.counter("encoding.encoded_triples").inc(len(index))
            sp.set(classes=len(encoding.classes.order),
                   properties=len(encoding.properties.order),
                   terms=len(remap))
        return cls(graph, encoding, remap, index)

    # -- Graph surface the join layer reads -----------------------------

    @property
    def backend(self) -> str:
        return "columnar"

    @property
    def index(self) -> ColumnarTripleIndex:
        return self._index

    @property
    def dictionary(self) -> _RemappedDictionary:
        return self._dictionary

    def __len__(self) -> int:
        return len(self._index)

    def count(self, s: Optional[Term] = None, p: Optional[Term] = None,
              o: Optional[Term] = None) -> int:
        """Exact match count under the (s, p, o) pattern, as
        :meth:`Graph.count` — the optimizer's statistics source."""
        encoded: List[Optional[int]] = []
        for term in (s, p, o):
            if term is None or isinstance(term, Variable):
                encoded.append(None)
            else:
                term_id = self._dictionary.lookup(term)
                if term_id is None:
                    return 0
                encoded.append(term_id)
        return self._index.count(*encoded)

    # -- incremental maintenance ----------------------------------------

    def apply_inserts(self, batch: Iterable[Triple]) -> int:
        """Fold freshly inserted instance triples into the view.

        The caller guarantees the batch contains no schema triples
        (those invalidate the encoding wholesale).  New terms extend
        the remap with identity entries; the remapped triples land in
        the columnar delta log as any other insert batch would.
        """
        self.remap.extend_identity(len(self.source.dictionary))
        lookup = self.source.dictionary.lookup
        o2n = self.remap.old_to_new
        encoded = []
        for triple in batch:
            s, p, o = lookup(triple.s), lookup(triple.p), lookup(triple.o)
            if s is None or p is None or o is None:
                continue  # not interned: cannot be in the source graph
            encoded.append((o2n[s], o2n[p], o2n[o]))
        fresh = self._index.add_batch(encoded)
        get_metrics().counter("encoding.incremental_inserts").inc(len(fresh))
        return len(fresh)


def encoded_view(graph: Graph) -> EncodedGraphView:
    """The graph's interval-encoded view, cached per graph version.

    Any mutation — schema or instance — invalidates the cache through
    :meth:`Graph.cached_derived`; the database layer re-publishes an
    incrementally maintained view across pure instance inserts (see
    :func:`refresh_view_after_insert`) so only schema changes pay the
    full O(n) rebuild.
    """
    return graph.cached_derived(  # type: ignore[return-value]
        ENCODING_VIEW_KEY, EncodedGraphView.build)


def refresh_view_after_insert(graph: Graph, batch: Sequence[Triple]) -> bool:
    """Keep a cached encoded view warm across an instance-insert batch.

    Called by the database *after* the batch landed in ``graph``.  If a
    view is cached (at any version) and the batch touches no schema
    triple, the batch is applied in place and the view re-published at
    the current version; otherwise the stale entry is left to expire
    (the next :func:`encoded_view` call rebuilds).  Returns True when
    the view was refreshed.
    """
    view = graph.peek_derived(ENCODING_VIEW_KEY)
    if view is None or not isinstance(view, EncodedGraphView):
        return False
    if any(is_schema_triple(t) for t in batch):
        return False
    view.apply_inserts(batch)
    graph.store_derived(ENCODING_VIEW_KEY, view)
    return True


# ----------------------------------------------------------------------
# query-side translation
# ----------------------------------------------------------------------

AtomSpec = Union[TriplePattern, IntervalPattern]

_Lookup = Callable[[Term], Optional[int]]


def _interval_of(members: Iterable[Term], lookup: _Lookup
                 ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]:
    ids = sorted(i for m in members if (i := lookup(m)) is not None)
    return coalesce_ids(ids), tuple(ids)


def encoded_atom_specs(atom: TriplePattern, schema: Schema,
                       lookup: _Lookup) -> List[AtomSpec]:
    """Translate one query atom into interval-encoded alternatives.

    The returned specs' matches union to exactly the matches of
    :func:`~repro.reasoning.reformulation.atom_alternatives` — the
    subclass (resp. subproperty) fan-out collapses into identifier
    intervals at the atom's class (resp. property) position; the
    domain/range rewrites of a type atom become intervals at the
    *property* position of a fresh-variable atom.  ``lookup`` maps
    terms to identifiers of the graph the specs will run against (the
    encoded view, or the source graph on the hash fallback).  An empty
    list means the atom is unsatisfiable on that graph (no member of
    any alternative is interned).
    """
    prop = atom.p
    if isinstance(prop, Variable):
        return [atom]
    metrics = get_metrics()
    if prop == RDF.type:
        cls = atom.o
        if isinstance(cls, Variable) or isinstance(cls, Literal):
            return [atom]
        specs: List[AtomSpec] = []
        members = schema.subclasses(cls, reflexive=True)
        if len(members) == 1:
            specs.append(atom)
        else:
            ranges, ids = _interval_of(members, lookup)
            if ids:
                specs.append(IntervalPattern(atom, 2, ranges, ids))
                metrics.counter("encoding.interval_atoms").inc()
        domain_props = schema.properties_with_domain(cls)
        if domain_props:
            ranges, ids = _interval_of(domain_props, lookup)
            if ids:
                specs.append(IntervalPattern(
                    TriplePattern(atom.s, prop, fresh_variable()),
                    1, ranges, ids))
                metrics.counter("encoding.interval_atoms").inc()
        range_props = schema.properties_with_range(cls)
        if range_props:
            ranges, ids = _interval_of(range_props, lookup)
            if ids:
                specs.append(IntervalPattern(
                    TriplePattern(fresh_variable(), prop, atom.s),
                    1, ranges, ids))
                metrics.counter("encoding.interval_atoms").inc()
        return specs
    if prop in SCHEMA_PROPERTIES:
        # schema-level atoms are answered by the materialized closure
        return [atom]
    members = schema.subproperties(prop, reflexive=True)
    if len(members) == 1:
        return [atom]
    ranges, ids = _interval_of(members, lookup)
    if not ids:
        return []
    metrics.counter("encoding.interval_atoms").inc()
    return [IntervalPattern(atom, 1, ranges, ids)]


# ----------------------------------------------------------------------
# degeneration diagnostics (the `repro lint` SC110 data source)
# ----------------------------------------------------------------------

class NodeFragmentation:
    """How one hierarchy node's closure fares under the encoding."""

    __slots__ = ("kind", "term", "member_count", "run_count")

    def __init__(self, kind: str, term: Term, member_count: int,
                 run_count: int):
        self.kind = kind              # "class" | "property"
        self.term = term
        self.member_count = member_count
        self.run_count = run_count

    @property
    def degenerate(self) -> bool:
        """True when more than half the closure needs its own run —
        the interval scan has effectively fallen back to the member
        set."""
        return self.run_count > max(1, self.member_count // 2)


def fragmentation_report(schema: Schema) -> List[NodeFragmentation]:
    """Per-node interval fragmentation of both hierarchies.

    Computed on virtual identifiers (the DFS preorder positions
    themselves), i.e. the best case any dictionary remap can achieve;
    only nodes whose closure does not coalesce into a single run are
    reported.  ``repro lint`` turns these into SC110 diagnostics so
    users can predict, from the schema alone, where ``"encoded"``
    degenerates to member expansion.
    """
    encoding = SchemaEncoding.build(schema)
    report: List[NodeFragmentation] = []
    for kind, assignment, closure in (
            ("class", encoding.classes,
             lambda t: schema.subclasses(t, reflexive=True)),
            ("property", encoding.properties,
             lambda t: schema.subproperties(t, reflexive=True))):
        for term in assignment.order:
            member_count, run_count = assignment.fragmentation(
                term, closure(term))
            if run_count > 1:
                report.append(NodeFragmentation(kind, term, member_count,
                                                run_count))
    report.sort(key=lambda n: (-n.run_count, n.kind, n.term.sort_key()))
    return report
