"""Reasoning core: entailment rules, saturation, maintenance and
query reformulation — the two technique families of Section II-B.
"""

from .explain import (ProofNode, all_justifications, explain,
                      minimal_support)
from .incremental import (CountingReasoner, CyclicSchemaError, DRedReasoner,
                          IncrementalReasoner, MaintenanceResult,
                          one_step_derivations)
from .reformulation import (FactorizedVariant, Reformulation,
                            atom_alternatives, reformulate,
                            reformulate_fixpoint)
from .rules import Derivation, Rule, instantiate_head
from .rulesets import (FIGURE2_RULES, RDFS_DEFAULT, RDFS_FULL, RDFS_PLUS,
                       RHO_DF, RULESETS, RuleSet, get_ruleset)
from .saturation import (SaturationResult, entails, has_meta_schema,
                         is_saturated, saturate, saturation_of)

__all__ = [
    "Rule", "Derivation", "instantiate_head",
    "ProofNode", "explain", "all_justifications", "minimal_support",
    "RuleSet", "RHO_DF", "RDFS_DEFAULT", "RDFS_FULL", "RDFS_PLUS",
    "FIGURE2_RULES", "RULESETS", "get_ruleset",
    "SaturationResult", "saturate", "saturation_of", "entails",
    "is_saturated", "has_meta_schema",
    "IncrementalReasoner", "DRedReasoner", "CountingReasoner",
    "MaintenanceResult", "CyclicSchemaError", "one_step_derivations",
    "Reformulation", "FactorizedVariant", "reformulate",
    "reformulate_fixpoint", "atom_alternatives",
]
