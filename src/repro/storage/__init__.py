"""Durable storage: WAL + snapshot persistence for the RDF database.

See :mod:`repro.storage.store` for the commit and recovery protocols,
:mod:`repro.storage.wal` for the log format, and
:mod:`repro.storage.runfiles` for the on-disk run/terms formats.
:mod:`repro.storage.faults` holds the crash-injection hooks the
recovery test harness drives.
"""

from .faults import (FAULT_POINTS, FaultInjector, FaultRecorder,
                     InjectedCrash, fault_point, set_fault_hook)
from .runfiles import StorageCorruptionError
from .store import (DEFAULT_SNAPSHOT_EVERY, DurableStore, RecoveredState)
from .wal import WALRecord, WriteAheadLog, read_records

__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "DurableStore",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultRecorder",
    "InjectedCrash",
    "RecoveredState",
    "StorageCorruptionError",
    "WALRecord",
    "WriteAheadLog",
    "fault_point",
    "read_records",
    "set_fault_hook",
]
