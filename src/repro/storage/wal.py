"""The write-ahead log: checksummed, length-prefixed update records.

Each record is ``[length u32][crc32 u32][payload]`` with the payload a
UTF-8 JSON document — one applied ``insert``/``delete`` batch carrying
its triples as N-Triples lines and the graph version the batch
produced.  Appends go through an *unbuffered* file handle so a crash
(real or injected) leaves exactly the bytes written so far, and a
record is only acknowledged after ``fsync``.

Reading is tail-tolerant by construction: :func:`read_records` scans
from the start and stops at the first truncated or checksum-failing
record, reporting the byte offset of the last intact boundary.  A torn
final record — the canonical crash-during-append artifact — is simply
cut off; recovery truncates the file back to the reported boundary
before appending again, so garbage never ends up *between* records.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from ..obs import get_metrics
from .faults import fault_point

__all__ = ["WriteAheadLog", "WALRecord", "read_records"]

_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: One decoded WAL record: the parsed JSON payload.
WALRecord = Dict[str, object]


def read_records(path: str) -> Tuple[List[WALRecord], int, bool]:
    """Decode ``path``; return ``(records, valid_bytes, torn)``.

    ``valid_bytes`` is the offset one past the last intact record —
    the length to truncate to before appending.  ``torn`` reports
    whether trailing bytes were discarded (truncated or corrupt tail).
    A missing file reads as empty.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, False
    records: List[WALRecord] = []
    offset = 0
    size = len(data)
    while offset + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            break  # torn: the payload never finished writing
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt: treat like a torn tail, keep the prefix
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        records.append(record)
        offset = end
    torn = offset != size
    if torn:
        get_metrics().counter("storage.wal_torn_tail").inc()
    return records, offset, torn


class WriteAheadLog:
    """Appender over one WAL file (read side: :func:`read_records`)."""

    __slots__ = ("path", "_handle", "records", "bytes_written")

    def __init__(self, path: str, truncate_to: Optional[int] = None,
                 existing_records: int = 0):
        """Open ``path`` for appending.

        ``truncate_to`` cuts the file back to the last intact record
        boundary first (recovery passes the offset
        :func:`read_records` reported); ``None`` appends as-is.
        ``existing_records`` seeds the record counter with the intact
        records already in the file, so snapshot-triggering thresholds
        survive a reopen.
        """
        self.path = path
        if truncate_to is not None and os.path.exists(path):
            current = os.path.getsize(path)
            if current > truncate_to:
                with open(path, "r+b") as handle:
                    handle.truncate(truncate_to)
        # buffering=0: every write reaches the OS immediately, so an
        # injected crash mid-append leaves a genuinely torn record
        self._handle = open(path, "ab", buffering=0)
        self.records = existing_records
        self.bytes_written = truncate_to or 0

    def append(self, record: WALRecord, sync: bool = True) -> None:
        """Append one record; durable once this returns (``sync=True``)."""
        payload = json.dumps(record, separators=(",", ":"),
                             sort_keys=True).encode("utf-8")
        blob = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        fault_point("wal.append.start")
        half = len(blob) // 2
        self._handle.write(blob[:half])
        fault_point("wal.append.torn")
        self._handle.write(blob[half:])
        fault_point("wal.append.full")
        if sync:
            os.fsync(self._handle.fileno())
        fault_point("wal.append.synced")
        self.records += 1
        self.bytes_written += len(blob)
        metrics = get_metrics()
        metrics.counter("storage.wal_records").inc()
        metrics.counter("storage.wal_bytes").inc(len(blob))

    def reset(self) -> None:
        """Drop every record (the snapshot now covers them)."""
        fault_point("wal.reset")
        self._handle.close()
        self._handle = open(self.path, "wb", buffering=0)
        os.fsync(self._handle.fileno())
        self.records = 0
        self.bytes_written = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
