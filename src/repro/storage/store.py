"""The durable store: snapshots + WAL under one directory.

Layout of a storage directory::

    CURRENT                      # name of the committed snapshot dir
    wal.log                      # update batches since that snapshot
    snapshot-00000003-v41/       # the committed snapshot
        manifest.json            # graph version, config, file CRCs
        explicit.terms           # term dictionary, JSON lines, id order
        explicit.spo.run         # one binary run file per index order
        explicit.pos.run
        ...
        saturated.terms          # saturation strategy: the closure too
        saturated.spo.run
        ...

The commit protocol is the classic temp-dir/rename/pointer-swap
sequence, with a :func:`~repro.storage.faults.fault_point` announced
at every irreversible step so the crash-injection suite can kill the
process in each intermediate state:

1. write every file into ``.tmp-<seq>`` and fsync it
   (``snapshot.files_written``);
2. rename the temp dir to ``snapshot-<seq>-v<version>`` and fsync the
   parent (``snapshot.renamed`` — the snapshot exists but is not yet
   referenced);
3. atomically rewrite ``CURRENT`` (``snapshot.current_written`` — the
   snapshot is now the recovery root);
4. reset the WAL (``snapshot.done``) and garbage-collect older
   snapshot dirs.

Recovery inverts it: read ``CURRENT``, validate the manifest it names
(every CRC, the byte order, the format version), mmap the run files
back, and hand the WAL tail — records whose graph version exceeds the
snapshot's — to the database for replay through the incremental
maintenance engines.  A crash between any two steps leaves either the
old or the new snapshot committed, never neither; WAL records made
stale by step 3 are skipped by the version test in step 4's stead.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import get_metrics, span
from ..rdf.columnar import ColumnarTripleIndex
from ..rdf.graph import Graph
from ..rdf.ntriples import parse_ntriples, serialize_ntriples
from .faults import fault_point
from .runfiles import (StorageCorruptionError, fsync_dir, fsync_file,
                       native_byteorder, open_run_file, read_terms_file,
                       write_run_file, write_terms_file)
from .wal import WALRecord, WriteAheadLog, read_records

__all__ = ["DurableStore", "RecoveredState", "DEFAULT_SNAPSHOT_EVERY",
           "MANIFEST_FORMAT"]

MANIFEST_FORMAT = "repro-storage-manifest"
_MANIFEST_VERSION = 1

#: Snapshot automatically once this many WAL records accumulate
#: (:meth:`DurableStore.should_snapshot`); replaying a bounded tail
#: keeps restart time proportional to the update rate, not the uptime.
DEFAULT_SNAPSHOT_EVERY = 512

_CURRENT = "CURRENT"
_WAL = "wal.log"
_MANIFEST = "manifest.json"
_SNAPSHOT_RE = re.compile(r"^(?:\.tmp-|snapshot-)(\d+)")


@dataclass(slots=True)
class RecoveredState:
    """What :meth:`DurableStore.recover` hands back to the database."""

    meta: Dict[str, object]          # config stored in the manifest
    explicit: Graph                  # the asserted triples
    saturated: Optional[Graph]       # the closure (saturation strategy)
    graph_version: int               # explicit graph version at snapshot
    records: List[WALRecord]         # WAL tail to replay (stale skipped)
    torn: bool                       # whether a torn WAL tail was cut


class DurableStore:
    """Snapshot + WAL management for one storage directory.

    The store only moves bytes; interpreting WAL records (replaying
    them through a maintenance engine) is the database's job.
    """

    __slots__ = ("directory", "snapshot_every", "wal",
                 "_snapshot_name", "_graph_version")

    def __init__(self, directory: str,
                 snapshot_every: int = DEFAULT_SNAPSHOT_EVERY):
        self.directory = directory
        self.snapshot_every = snapshot_every
        self.wal: Optional[WriteAheadLog] = None
        self._snapshot_name: Optional[str] = None
        self._graph_version = 0
        os.makedirs(directory, exist_ok=True)

    @staticmethod
    def exists(directory: str) -> bool:
        """True when ``directory`` holds a committed store.

        ``CURRENT`` is written last in the commit protocol, so its
        presence *is* the commit: a directory holding only the debris
        of a crashed first snapshot reads as empty and is re-initialized
        (the debris is garbage-collected by the next commit).
        """
        return os.path.exists(os.path.join(directory, _CURRENT))

    # ------------------------------------------------------------------
    # commit path
    # ------------------------------------------------------------------

    def initialize(self, meta: Dict[str, object], explicit: Graph,
                   saturated: Optional[Graph] = None) -> None:
        """First commit for a fresh directory: snapshot, then a new WAL."""
        stale_wal = os.path.join(self.directory, _WAL)
        if os.path.exists(stale_wal):  # debris of a crashed store
            os.remove(stale_wal)
        self.snapshot(meta, explicit, saturated)

    def snapshot(self, meta: Dict[str, object], explicit: Graph,
                 saturated: Optional[Graph] = None) -> str:
        """Commit a snapshot; returns the snapshot directory name."""
        with span("storage.snapshot", version=explicit.version) as sp:
            fault_point("snapshot.start")
            sequence = self._next_sequence()
            final = f"snapshot-{sequence:08d}-v{explicit.version}"
            tmp = os.path.join(self.directory, f".tmp-{sequence:08d}")
            if os.path.exists(tmp):
                shutil.rmtree(tmp)
            os.makedirs(tmp)

            manifest: Dict[str, object] = {
                "format": MANIFEST_FORMAT,
                "version": _MANIFEST_VERSION,
                "graph_version": explicit.version,
                "byteorder": native_byteorder(),
                "meta": dict(meta),
                "graphs": {"explicit": self._write_graph(tmp, "explicit",
                                                         explicit)},
            }
            if saturated is not None:
                manifest["graphs"]["saturated"] = self._write_graph(  # type: ignore[index]
                    tmp, "saturated", saturated)
            manifest_path = os.path.join(tmp, _MANIFEST)
            with open(manifest_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            fsync_file(manifest_path)
            fsync_dir(tmp)
            fault_point("snapshot.files_written")

            os.rename(tmp, os.path.join(self.directory, final))
            fsync_dir(self.directory)
            fault_point("snapshot.renamed")

            self._write_current(final)
            fault_point("snapshot.current_written")

            if self.wal is not None:
                self.wal.reset()
            else:
                self.wal = WriteAheadLog(os.path.join(self.directory, _WAL))
            fault_point("snapshot.done")

            self._collect_garbage(keep=final)
            self._snapshot_name = final
            self._graph_version = explicit.version
            sp.set(snapshot=final)
        get_metrics().counter("storage.snapshots").inc()
        return final

    def log(self, record: WALRecord) -> None:
        """Append one update record; durable when this returns."""
        if self.wal is None:
            raise RuntimeError("store has no open WAL "
                               "(initialize or recover first)")
        self.wal.append(record)

    def should_snapshot(self) -> bool:
        """True once the WAL tail is long enough to be worth folding."""
        return (self.wal is not None
                and self.wal.records >= self.snapshot_every)

    # ------------------------------------------------------------------
    # recovery path
    # ------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Open the committed snapshot and the replayable WAL tail."""
        with span("storage.recover") as sp:
            current_path = os.path.join(self.directory, _CURRENT)
            try:
                with open(current_path, encoding="utf-8") as handle:
                    name = handle.read().strip()
            except FileNotFoundError:
                raise StorageCorruptionError(
                    f"{self.directory!r} has no committed snapshot "
                    "(missing CURRENT)") from None
            snapdir = os.path.join(self.directory, name)
            manifest_path = os.path.join(snapdir, _MANIFEST)
            try:
                with open(manifest_path, encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except FileNotFoundError:
                raise StorageCorruptionError(
                    f"snapshot {name!r} has no manifest") from None
            except json.JSONDecodeError as error:
                raise StorageCorruptionError(
                    f"snapshot {name!r} manifest is unreadable: "
                    f"{error}") from None
            if (manifest.get("format") != MANIFEST_FORMAT
                    or manifest.get("version") != _MANIFEST_VERSION):
                raise StorageCorruptionError(
                    f"snapshot {name!r} has an unknown manifest format")
            if manifest.get("byteorder") != native_byteorder():
                raise StorageCorruptionError(
                    f"snapshot {name!r} was written on a "
                    f"{manifest.get('byteorder')}-endian machine; run "
                    "files are native-endian and cannot be mapped here")

            graphs = manifest["graphs"]
            explicit = self._load_graph(snapdir, graphs["explicit"])
            saturated = (self._load_graph(snapdir, graphs["saturated"])
                         if "saturated" in graphs else None)
            graph_version = manifest["graph_version"]

            wal_path = os.path.join(self.directory, _WAL)
            records, valid_bytes, torn = read_records(wal_path)
            # records the committed snapshot already covers are stale
            # (crash between CURRENT write and WAL reset); skip them
            fresh = [r for r in records
                     if int(r.get("version", 0)) > graph_version]  # type: ignore[call-overload]
            if len(fresh) != len(records):
                get_metrics().counter("storage.wal_stale_skipped").inc(
                    len(records) - len(fresh))
            self.wal = WriteAheadLog(wal_path, truncate_to=valid_bytes,
                                     existing_records=len(records))
            self._snapshot_name = name
            self._graph_version = graph_version
            sp.set(snapshot=name, version=graph_version,
                   replayed=len(fresh), torn=torn)
        metrics = get_metrics()
        metrics.counter("storage.recoveries").inc()
        metrics.counter("storage.wal_replayed").inc(len(fresh))
        return RecoveredState(meta=dict(manifest["meta"]), explicit=explicit,
                              saturated=saturated,
                              graph_version=graph_version,
                              records=fresh, torn=torn)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "directory": self.directory,
            "snapshot": self._snapshot_name,
            "snapshot_version": self._graph_version,
            "wal_records": self.wal.records if self.wal else 0,
            "wal_bytes": self.wal.bytes_written if self.wal else 0,
        }

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # graph (de)serialization
    # ------------------------------------------------------------------

    def _write_graph(self, tmpdir: str, label: str,
                     graph: Graph) -> Dict[str, object]:
        if graph.backend == "columnar":
            index = graph.index
            assert isinstance(index, ColumnarTripleIndex)
            terms_file = f"{label}.terms"
            terms = list(graph.terms())
            terms_crc = write_terms_file(os.path.join(tmpdir, terms_file),
                                         terms)
            orders: Dict[str, object] = {}
            for name, run in index.export_runs().items():
                run_file = f"{label}.{name}.run"
                crc = write_run_file(os.path.join(tmpdir, run_file), run)
                orders[name] = {"file": run_file, "slots": len(run),
                                "crc": crc}
            return {"kind": "columnar", "triples": len(graph),
                    "graph_version": graph.version,
                    "terms": {"file": terms_file, "count": len(terms),
                              "crc": terms_crc},
                    "orders": orders}
        nt_file = f"{label}.nt"
        payload = serialize_ntriples(graph, sort=True).encode("utf-8")
        path = os.path.join(tmpdir, nt_file)
        with open(path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return {"kind": "ntriples", "file": nt_file,
                "crc": zlib.crc32(payload), "triples": len(graph),
                "graph_version": graph.version}

    def _load_graph(self, snapdir: str, doc: Dict[str, object]) -> Graph:
        if doc["kind"] == "columnar":
            terms_doc = doc["terms"]
            terms = read_terms_file(
                os.path.join(snapdir, terms_doc["file"]),  # type: ignore[index]
                terms_doc["crc"])  # type: ignore[index]
            orders = doc["orders"]
            runs = {}
            for name, run_doc in orders.items():  # type: ignore[union-attr]
                runs[name] = open_run_file(
                    os.path.join(snapdir, run_doc["file"]),
                    run_doc["slots"], run_doc["crc"])
            index = ColumnarTripleIndex.from_sorted_runs(
                tuple(orders), runs, doc["triples"])  # type: ignore[arg-type]
            graph = Graph.from_parts(terms, index, backend="columnar")
        elif doc["kind"] == "ntriples":
            path = os.path.join(snapdir, doc["file"])  # type: ignore[arg-type]
            with open(path, "rb") as handle:
                payload = handle.read()
            if zlib.crc32(payload) != doc["crc"]:
                raise StorageCorruptionError(
                    f"graph file {path!r} failed its CRC")
            graph = Graph()
            graph.update(parse_ntriples(payload.decode("utf-8")))
        else:
            raise StorageCorruptionError(
                f"unknown graph serialization kind {doc['kind']!r}")
        if len(graph) != doc["triples"]:
            raise StorageCorruptionError(
                f"graph holds {len(graph)} triples; manifest expects "
                f"{doc['triples']}")
        graph.restore_version(doc["graph_version"])  # type: ignore[arg-type]
        return graph

    # ------------------------------------------------------------------
    # directory bookkeeping
    # ------------------------------------------------------------------

    def _next_sequence(self) -> int:
        highest = 0
        for entry in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(entry)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    def _write_current(self, name: str) -> None:
        """Point ``CURRENT`` at ``name`` atomically (tmp + replace)."""
        path = os.path.join(self.directory, _CURRENT)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(name + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(self.directory)

    def _collect_garbage(self, keep: str) -> None:
        """Remove superseded snapshots and crashed temp dirs."""
        removed = 0
        for entry in os.listdir(self.directory):
            if entry == keep or not _SNAPSHOT_RE.match(entry):
                continue
            shutil.rmtree(os.path.join(self.directory, entry),
                          ignore_errors=True)
            removed += 1
        if removed:
            get_metrics().counter("storage.snapshots_collected").inc(removed)
