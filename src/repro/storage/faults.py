"""Crash-injection hooks for the durable storage write paths.

Every irreversible step in the WAL-append and snapshot-commit
protocols announces itself through :func:`fault_point` before (and
after) touching disk.  In production the hook is ``None`` and the
call costs one global read; under test a hook can raise
:class:`InjectedCrash` at any announced point, which the
crash-injection suite uses to kill the store in every reachable
intermediate state — torn last WAL record, fully-written-but-
uncommitted snapshot, committed snapshot with a stale WAL — and then
prove recovery returns to the exact pre-crash graph version.

The hook deliberately receives the *name* of the point only: fault
schedules stay declarative (``FaultInjector("wal.append.torn", 3)``)
and the storage layer stays free of test logic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["FAULT_POINTS", "InjectedCrash", "FaultInjector",
           "fault_point", "set_fault_hook"]

#: Every announced fault point, in write-path order.  The
#: crash-injection suite parametrizes over this tuple, so adding a
#: point to a write path automatically adds it to the kill schedule.
FAULT_POINTS: Tuple[str, ...] = (
    "wal.append.start",      # nothing written yet
    "wal.append.torn",       # half the record's bytes are on disk
    "wal.append.full",       # record complete, fsync pending
    "wal.append.synced",     # record durable, ack not yet returned
    "snapshot.start",        # nothing written yet
    "snapshot.files_written",  # temp dir complete, commit rename pending
    "snapshot.renamed",      # snapshot dir in place, CURRENT still old
    "snapshot.current_written",  # CURRENT updated, WAL not yet reset
    "wal.reset",             # WAL truncation pending, CURRENT committed
    "snapshot.done",         # fully committed, old snapshots not yet GCed
    "save.start",            # atomic save: nothing written yet
    "save.files_written",    # temp dir complete, swap pending
)


class InjectedCrash(RuntimeError):
    """Raised by a fault hook to simulate the process dying here.

    Whatever bytes the storage layer wrote before the raise are on
    disk (the WAL writes unbuffered); everything after is not — the
    same observable state a ``SIGKILL`` at that instruction leaves.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point


_hook: Optional[Callable[[str], None]] = None


def set_fault_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install (or with ``None`` remove) the process-wide fault hook."""
    global _hook
    _hook = hook


def fault_point(name: str) -> None:
    """Announce a write-path point; the installed hook may raise here."""
    if _hook is not None:
        _hook(name)


class FaultInjector:
    """A hook that raises :class:`InjectedCrash` at the n-th hit of
    one named point, and counts every point it sees along the way.

    >>> injector = FaultInjector("wal.append.torn", hits=2)
    >>> set_fault_hook(injector)   # second torn-write point crashes
    """

    __slots__ = ("point", "hits", "seen", "fired")

    def __init__(self, point: str, hits: int = 1):
        self.point = point
        self.hits = hits
        self.seen: Dict[str, int] = {}
        self.fired = False

    def __call__(self, name: str) -> None:
        self.seen[name] = self.seen.get(name, 0) + 1
        if name == self.point and self.seen[name] == self.hits:
            self.fired = True
            raise InjectedCrash(name)


class FaultRecorder:
    """A hook that only counts the points it sees (schedule discovery)."""

    __slots__ = ("seen",)

    def __init__(self) -> None:
        self.seen: List[str] = []

    def __call__(self, name: str) -> None:
        self.seen.append(name)
