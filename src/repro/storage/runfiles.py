"""On-disk formats for columnar runs and term dictionaries.

A *run file* is one index order's compacted main run — the same flat
``array('q')`` the in-memory LSM keeps, prefixed by a fixed 24-byte
header (magic, format version, slot count) and written in native byte
order.  Because the in-memory layout and the file payload are
identical, opening is an ``mmap`` plus a zero-copy
``memoryview.cast("q")``: the binary-search and scan primitives in
:mod:`repro.rdf.columnar` index straight into the page cache, and a
graph larger than RAM only faults in the pages its queries touch.

A *terms file* carries the term dictionary as JSON lines in
identifier order, so identifiers in the run files decode without any
re-encoding pass.  Integrity is enforced by CRC32s stored in the
snapshot manifest and verified on open (:func:`open_run_file`,
:func:`read_terms_file`) — a truncated or bit-flipped file raises
:class:`StorageCorruptionError` instead of answering queries wrong.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import List, Sequence, Union

from ..rdf.terms import BlankNode, Literal, Term, URI

__all__ = ["StorageCorruptionError", "RUN_MAGIC", "write_run_file",
           "open_run_file", "write_terms_file", "read_terms_file",
           "fsync_file", "fsync_dir"]

RUN_MAGIC = b"REPRORUN"
_RUN_HEADER = struct.Struct("<8sQQ")  # magic, format version, int64 slots
_RUN_FORMAT_VERSION = 1


class StorageCorruptionError(RuntimeError):
    """An on-disk structure failed validation (checksum, magic, size)."""


def fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str) -> None:
    """Persist a directory's entry table (after create/rename inside)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# run files
# ----------------------------------------------------------------------

def write_run_file(path: str, run: Union[array, memoryview]) -> int:
    """Write one order's main run; returns the payload CRC32.

    ``run`` is the compacted flat int64 buffer (``3 * triples`` slots);
    the file is fsynced before returning.
    """
    payload = run.tobytes()
    with open(path, "wb") as handle:
        handle.write(_RUN_HEADER.pack(RUN_MAGIC, _RUN_FORMAT_VERSION,
                                      len(run)))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    return zlib.crc32(payload)


def open_run_file(path: str, expected_slots: int,
                  expected_crc: int) -> memoryview:
    """mmap a run file back as a zero-copy int64 view.

    Validates the header, the slot count and the payload CRC against
    the manifest's expectations.  The returned memoryview keeps the
    mapping alive; the file descriptor is closed before returning.
    """
    size = os.path.getsize(path)
    if size < _RUN_HEADER.size:
        raise StorageCorruptionError(
            f"run file {path!r} is shorter than its header")
    with open(path, "rb") as handle:
        if size > _RUN_HEADER.size:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            header = bytes(mapped[:_RUN_HEADER.size])
            body = memoryview(mapped)[_RUN_HEADER.size:]
        else:
            header = handle.read(_RUN_HEADER.size)
            body = memoryview(b"")
    magic, version, slots = _RUN_HEADER.unpack(header)
    if magic != RUN_MAGIC or version != _RUN_FORMAT_VERSION:
        raise StorageCorruptionError(f"{path!r} is not a repro run file")
    if slots != expected_slots or len(body) != 8 * slots:
        raise StorageCorruptionError(
            f"run file {path!r} holds {slots} slots "
            f"({len(body)} payload bytes); manifest expects "
            f"{expected_slots}")
    if zlib.crc32(body) != expected_crc:
        raise StorageCorruptionError(f"run file {path!r} failed its CRC")
    return body.cast("q")


# ----------------------------------------------------------------------
# terms files
# ----------------------------------------------------------------------

def _term_to_json(term: Term) -> dict:
    if isinstance(term, URI):
        return {"t": "u", "v": term.value}
    if isinstance(term, BlankNode):
        return {"t": "b", "v": term.label}
    if isinstance(term, Literal):
        doc: dict = {"t": "l", "v": term.lexical}
        if term.datatype is not None:
            doc["d"] = term.datatype.value
        if term.language is not None:
            doc["g"] = term.language
        return doc
    raise TypeError(f"cannot persist term {term!r}")


def _term_from_json(doc: dict, path: str, line: int) -> Term:
    kind = doc.get("t")
    if kind == "u":
        return URI(doc["v"])
    if kind == "b":
        return BlankNode(doc["v"])
    if kind == "l":
        datatype = URI(doc["d"]) if "d" in doc else None
        return Literal(doc["v"], datatype=datatype, language=doc.get("g"))
    raise StorageCorruptionError(
        f"terms file {path!r} line {line}: unknown term kind {kind!r}")


def write_terms_file(path: str, terms: Sequence[Term]) -> int:
    """Write the dictionary's terms (identifier order); returns CRC32."""
    lines = [json.dumps(_term_to_json(term), separators=(",", ":"),
                        sort_keys=True, ensure_ascii=False)
             for term in terms]
    payload = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    return zlib.crc32(payload)


def read_terms_file(path: str, expected_crc: int) -> List[Term]:
    """Read terms back in identifier order, verifying the CRC."""
    with open(path, "rb") as handle:
        payload = handle.read()
    if zlib.crc32(payload) != expected_crc:
        raise StorageCorruptionError(f"terms file {path!r} failed its CRC")
    terms: List[Term] = []
    for number, line in enumerate(payload.decode("utf-8").splitlines(), 1):
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as error:
            raise StorageCorruptionError(
                f"terms file {path!r} line {number}: {error}") from None
        terms.append(_term_from_json(doc, path, number))
    return terms


def native_byteorder() -> str:
    """Recorded in the manifest; run files are native-endian."""
    return sys.byteorder
