"""W3C SPARQL 1.1 query-results serializers: JSON and CSV.

A serving layer (:mod:`repro.server`) needs wire formats, not Python
objects; these are the two from the SPARQL 1.1 recommendation the
endpoint speaks:

* **JSON** (`SPARQL 1.1 Query Results JSON Format`): lossless —
  the term kind, datatype and language tag survive, so
  ``results_from_json(results_to_json(r))`` reproduces ``r`` exactly
  (an invariant the test suite checks);
* **CSV** (`SPARQL 1.1 Query Results CSV and TSV Formats`): lossy by
  specification — every term is reduced to its lexical form.  The
  parser applies the W3C-sanctioned heuristic on the way back
  (``_:``-prefixed fields become blank nodes, fields that look like
  absolute IRIs become URIs, everything else a plain literal), which
  round-trips graphs of URIs/blank nodes/plain literals but forgets
  datatypes and language tags.

Boolean (ASK) results use the JSON ``{"head": {}, "boolean": b}``
form; the CSV rendering follows the de-facto convention of a single
``bool`` column.
"""

from __future__ import annotations

import csv
import io
import json
import re
from typing import Dict, List, Optional, Sequence

from ..rdf.terms import BlankNode, Literal, Term, URI, Variable
from .bindings import ResultSet

__all__ = ["results_to_json", "results_from_json", "results_to_csv",
           "results_from_csv", "boolean_to_json", "boolean_from_json",
           "boolean_to_csv"]


# ----------------------------------------------------------------------
# JSON (lossless)
# ----------------------------------------------------------------------

def _term_to_json(term: Term) -> Dict[str, str]:
    if isinstance(term, URI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        node = {"type": "literal", "value": term.lexical}
        if term.datatype is not None:
            node["datatype"] = term.datatype.value
        elif term.language is not None:
            node["xml:lang"] = term.language
        return node
    raise TypeError(f"cannot serialize {term!r} as a result term")


def _term_from_json(node: Dict[str, str]) -> Term:
    kind = node.get("type")
    value = node.get("value")
    if value is None:
        raise ValueError(f"result term without a value: {node!r}")
    if kind == "uri":
        return URI(value)
    if kind == "bnode":
        return BlankNode(value)
    if kind in ("literal", "typed-literal"):  # the latter: SPARQL 1.0 form
        datatype = node.get("datatype")
        language = node.get("xml:lang")
        if datatype is not None:
            return Literal(value, datatype=URI(datatype))
        return Literal(value, language=language)
    raise ValueError(f"unknown result term type: {kind!r}")


def results_to_json(results: ResultSet) -> str:
    """Serialize a SELECT result set in the W3C JSON results format."""
    bindings: List[Dict[str, Dict[str, str]]] = []
    for row in results:
        bindings.append({variable.name: _term_to_json(term)
                         for variable, term in zip(results.variables, row)})
    document = {
        "head": {"vars": [v.name for v in results.variables]},
        "results": {"bindings": bindings},
    }
    return json.dumps(document, indent=2, sort_keys=True)


def results_from_json(text: str) -> ResultSet:
    """Parse a W3C JSON results document back into a :class:`ResultSet`.

    Every binding must cover every head variable (the engine never
    produces partial rows; OPTIONAL is outside the supported dialect).
    """
    document = json.loads(text)
    head = document.get("head", {})
    if "boolean" in document:
        raise ValueError("boolean result document; use boolean_from_json")
    variables = [Variable(name) for name in head.get("vars", [])]
    results = ResultSet(variables)
    for binding in document.get("results", {}).get("bindings", []):
        row = []
        for variable in variables:
            node = binding.get(variable.name)
            if node is None:
                raise ValueError(
                    f"binding missing variable ?{variable.name}: {binding!r}")
            row.append(_term_from_json(node))
        results.add(tuple(row))
    return results


def boolean_to_json(answer: bool) -> str:
    """Serialize an ASK answer in the W3C JSON results format."""
    return json.dumps({"head": {}, "boolean": bool(answer)},
                      indent=2, sort_keys=True)


def boolean_from_json(text: str) -> bool:
    """Parse a W3C boolean results document."""
    document = json.loads(text)
    answer = document.get("boolean")
    if not isinstance(answer, bool):
        raise ValueError("not a boolean result document")
    return answer


# ----------------------------------------------------------------------
# CSV (lossy lexical forms, per the W3C CSV results format)
# ----------------------------------------------------------------------

#: an absolute IRI: a scheme, a colon, no whitespace (RFC 3986 scheme)
_IRI_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*:\S*$")

#: schemes we accept as "this field is an IRI" when parsing CSV back;
#: bare words like "true:" should stay literals
_IRI_SCHEMES = ("http:", "https:", "urn:", "mailto:", "ftp:", "file:",
                "tag:", "did:", "ws:", "wss:")


def _term_to_csv(term: Term) -> str:
    if isinstance(term, BlankNode):
        return f"_:{term.label}"
    if isinstance(term, URI):
        return term.value
    if isinstance(term, Literal):
        return term.lexical
    raise TypeError(f"cannot serialize {term!r} as a result term")


def _term_from_csv(field: str) -> Term:
    if field.startswith("_:") and len(field) > 2:
        return BlankNode(field[2:])
    if field.lower().startswith(_IRI_SCHEMES) and _IRI_RE.match(field):
        return URI(field)
    return Literal(field)


def results_to_csv(results: ResultSet) -> str:
    """Serialize a SELECT result set in the W3C CSV results format.

    CRLF row endings and minimal quoting, as the recommendation
    specifies; terms are reduced to lexical forms (lossy — use the
    JSON format when fidelity matters).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n",
                        quoting=csv.QUOTE_MINIMAL)
    writer.writerow([v.name for v in results.variables])
    for row in results:
        writer.writerow([_term_to_csv(term) for term in row])
    return buffer.getvalue()


def results_from_csv(text: str,
                     variables: Optional[Sequence[Variable]] = None
                     ) -> ResultSet:
    """Parse a W3C CSV results document (heuristically — see module
    docstring).  ``variables`` overrides the header row's order/names
    when the caller knows the original query."""
    rows = list(csv.reader(io.StringIO(text)))
    if not rows:
        raise ValueError("empty CSV results document (missing header)")
    header = rows[0]
    parsed_variables = (list(variables) if variables is not None
                        else [Variable(name) for name in header])
    if len(parsed_variables) != len(header):
        raise ValueError(f"expected {len(header)} variables, "
                         f"got {len(parsed_variables)}")
    results = ResultSet(parsed_variables)
    for row in rows[1:]:
        if not row:
            continue  # trailing blank line
        if len(row) != len(header):
            raise ValueError(f"row arity {len(row)} != header arity "
                             f"{len(header)}: {row!r}")
        results.add(tuple(_term_from_csv(field) for field in row))
    return results


def boolean_to_csv(answer: bool) -> str:
    """The de-facto single-column CSV rendering of an ASK answer."""
    return "bool\r\n" + ("true" if answer else "false") + "\r\n"
