"""BGP, UCQ and factorized-UCQ evaluation over a graph.

Plain evaluation of a query against a graph only sees the graph's
*explicit* triples (Section II-A): ``evaluate(q, G)`` is the paper's
``q(G)``.  The two query-answering techniques are then:

* saturation: ``evaluate(q, saturate(G))``  —  ``q(G∞)``;
* reformulation: ``evaluate_reformulation(reformulate(q, S), G)``  —
  ``qref(G)``, which equals ``q(G∞)`` under the engine's contract.

The evaluator is an index nested-loop join over the graph's triple
indexes in the optimizer's order; reformulated queries can be
evaluated either conjunct-by-conjunct (explicit UCQ) or directly on
the factorized form, where each atom scans its alternative patterns —
the far cheaper strategy the ABL-JOIN ablation quantifies.

On graphs with the ``"columnar"`` backend, plain BGP evaluation is
routed to the set-at-a-time pipeline in :mod:`repro.sparql.joins`
(merge/leapfrog intersections over sorted runs); semantics are
identical, only the execution strategy changes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..cancellation import current_token
from ..obs import get_metrics, span
from ..rdf.graph import Graph
from ..rdf.triples import Substitution, TriplePattern
from .ast import BGPQuery
from .bindings import ResultSet
from .optimizer import estimate_cardinality, order_patterns

__all__ = ["evaluate", "evaluate_bgp_bindings", "evaluate_ucq",
           "evaluate_factorized", "evaluate_encoded",
           "evaluate_reformulation", "REFORMULATION_STRATEGIES"]

#: The evaluation strategies for a reformulated query.
REFORMULATION_STRATEGIES = ("factorized", "ucq", "encoded")


def evaluate_bgp_bindings(graph: Graph, patterns: Sequence[TriplePattern],
                          optimize: bool = True) -> Iterator[Substitution]:
    """Stream every substitution satisfying all ``patterns`` in ``graph``."""
    if not patterns:
        yield {}
        return
    if graph.backend == "columnar":
        from .joins import iter_bindings
        yield from iter_bindings(graph, patterns, optimize)
        return
    if optimize:
        order = order_patterns(graph, patterns)
        ordered = [patterns[i] for i in order]
    else:
        ordered = list(patterns)

    # accounting is accumulated locally and flushed once (the join is a
    # generator the caller may abandon early, hence the finally)
    counts = [0, 0]  # [index lookups, intermediate bindings]
    token = current_token()  # serving deadline, if one is armed

    def join(index: int, binding: Substitution) -> Iterator[Substitution]:
        if index == len(ordered):
            yield binding
            return
        counts[0] += 1
        for extended in graph.match(ordered[index], binding):
            counts[1] += 1
            if token is not None and counts[1] & 0x3F == 0:
                token.raise_if_cancelled()
            yield from join(index + 1, extended)

    try:
        yield from join(0, {})
    finally:
        metrics = get_metrics()
        metrics.counter("evaluator.index_lookups").inc(counts[0])
        metrics.counter("evaluator.intermediate_bindings").inc(counts[1])


def evaluate(graph: Graph, query: BGPQuery, optimize: bool = True) -> ResultSet:
    """Evaluate a BGP query against the graph's explicit triples.

    This is the paper's ``q(G)``: no reasoning — implicit triples are
    invisible unless the graph has been saturated or the query
    reformulated.
    """
    if graph.backend == "columnar":
        from .joins import evaluate_columnar
        return evaluate_columnar(graph, query, optimize)
    results = ResultSet(query.distinguished, distinct=query.distinct)
    preset = query.preset
    for binding in evaluate_bgp_bindings(graph, query.patterns, optimize):
        row = tuple(
            binding.get(variable, preset.get(variable))
            for variable in query.distinguished
        )
        if any(value is None for value in row):
            raise ValueError(
                f"unbound distinguished variable in {query.to_sparql()!r}")
        results.add(row)  # type: ignore[arg-type]
        if query.limit is not None and len(results) >= query.limit:
            break
    return results


def evaluate_ask(graph: Graph, query: BGPQuery,
                 optimize: bool = True) -> bool:
    """Boolean (ASK) evaluation: does any binding satisfy the BGP?

    Stops at the first witness.
    """
    for __ in evaluate_bgp_bindings(graph, query.patterns, optimize):
        return True
    return False


def evaluate_ucq(graph: Graph, conjuncts: Iterable[BGPQuery],
                 optimize: bool = True) -> ResultSet:
    """Evaluate a union of conjunctive queries, under set semantics.

    The answer set of a UCQ is the union of its conjuncts' answer
    sets; duplicates across conjuncts are eliminated (the paper
    defines query answers as a set).
    """
    results: Optional[ResultSet] = None
    for conjunct in conjuncts:
        partial = evaluate(graph, conjunct, optimize)
        if results is None:
            results = ResultSet(partial.variables, distinct=True)
        for row in partial:
            results.add(row)
    if results is None:
        raise ValueError("empty union: no conjuncts to evaluate")
    return results


def evaluate_factorized(graph: Graph, reformulation,
                        optimize: bool = True,
                        prune: bool = True) -> ResultSet:
    """Evaluate a :class:`~repro.reasoning.reformulation.Reformulation`
    without expanding its UCQ.

    Each variant is one join whose atom scans range over the atom's
    alternative patterns — evaluating a "join of unions" instead of a
    "union of joins".  With ``n`` atoms of ``k`` alternatives each,
    this scans ``n·k`` pattern sets instead of evaluating ``k^n``
    conjuncts.

    With ``prune=True`` (default), alternatives whose constant-position
    index count is zero on *this* graph are dropped before the join —
    data-aware pruning: a subclass with no instances costs nothing.
    Sound because a zero-cardinality scan contributes no bindings.
    """
    metrics = get_metrics()
    counts = [0, 0, 0]  # [index lookups, intermediate bindings, pruned]
    token = current_token()  # serving deadline, if one is armed
    results: Optional[ResultSet] = None
    for variant in reformulation.variants:
        query = variant.query
        if results is None:
            results = ResultSet(query.distinguished, distinct=True)
        representative = list(query.patterns)
        if optimize:
            order = order_patterns(graph, representative)
        else:
            order = list(range(len(representative)))
        alternative_sets = [variant.alternatives[i] for i in order]
        if prune:
            pruned = []
            empty_atom = False
            for alternatives in alternative_sets:
                kept = tuple(
                    alt for alt in alternatives
                    if estimate_cardinality(graph, alt) > 0)
                counts[2] += len(alternatives) - len(kept)
                if not kept:
                    empty_atom = True
                    break
                pruned.append(kept)
            if empty_atom:
                continue  # an atom with no live alternative: no answers
            alternative_sets = pruned

        def join(index: int, binding: Substitution) -> Iterator[Substitution]:
            if index == len(alternative_sets):
                yield binding
                return
            for alternative in alternative_sets[index]:
                counts[0] += 1
                for extended in graph.match(alternative, binding):
                    counts[1] += 1
                    if token is not None and counts[1] & 0x3F == 0:
                        token.raise_if_cancelled()
                    yield from join(index + 1, extended)

        preset = query.preset
        for binding in join(0, {}):
            row = tuple(
                binding.get(variable, preset.get(variable))
                for variable in query.distinguished
            )
            if any(value is None for value in row):
                raise ValueError(
                    f"unbound distinguished variable in {query.to_sparql()!r}")
            results.add(row)  # type: ignore[arg-type]
    metrics.counter("evaluator.index_lookups").inc(counts[0])
    metrics.counter("evaluator.intermediate_bindings").inc(counts[1])
    metrics.counter("evaluator.pruned_alternatives").inc(counts[2])
    if results is None:
        raise ValueError("reformulation has no variants")
    return results


def evaluate_encoded(graph: Graph, reformulation,
                     optimize: bool = True) -> ResultSet:
    """Evaluate a reformulation through the semantic interval encoding.

    Instead of scanning each atom's alternative *patterns* (factorized)
    or expanding the UCQ, the per-atom fan-out is collapsed into
    identifier intervals (:mod:`repro.reasoning.encoding`): on columnar
    graphs the query runs against the cached interval-encoded view and
    each former union becomes a handful of binary-searched range scans;
    on hash graphs the intervals fall back to explicit member
    expansion against the source index.  Answers are identical to the
    other strategies under the same contract (schema closure
    materialized in ``graph``).
    """
    from ..reasoning.encoding import encoded_atom_specs, encoded_view
    from .joins import compile_mixed_bgp

    metrics = get_metrics()
    with span("encoding.evaluate",
              variants=len(reformulation.variants)) as sp:
        if graph.backend == "columnar":
            target = encoded_view(graph)
        else:
            target = graph
            metrics.counter("encoding.hash_fallbacks").inc()
        schema = reformulation.schema
        lookup = target.dictionary.lookup
        decode = target.dictionary.decode
        results: Optional[ResultSet] = None
        for variant in reformulation.variants:
            query = variant.query
            if results is None:
                results = ResultSet(query.distinguished, distinct=True)
            groups = []
            satisfiable = True
            for atom in query.patterns:
                specs = encoded_atom_specs(atom, schema, lookup)
                if not specs:
                    satisfiable = False
                    break
                groups.append((atom, tuple(specs)))
            if not satisfiable:
                continue  # an atom with no live alternative: no answers
            plan = compile_mixed_bgp(target, groups, optimize)
            preset = query.preset
            projection = [(plan.slot_of.get(variable), preset.get(variable))
                          for variable in query.distinguished]
            for binding in plan.run():
                row = []
                for slot, constant in projection:
                    value = binding[slot] if slot is not None else None
                    if value is not None:
                        row.append(decode(value))
                    elif constant is not None:
                        row.append(constant)
                    else:
                        raise ValueError(
                            f"unbound distinguished variable in "
                            f"{query.to_sparql()!r}")
                results.add(tuple(row))
        if results is None:
            raise ValueError("reformulation has no variants")
        sp.set(answers=len(results))
    return results


def evaluate_reformulation(graph: Graph, reformulation,
                           strategy: str = "factorized",
                           optimize: bool = True) -> ResultSet:
    """Evaluate ``qref`` against ``graph`` (whose schema closure must be
    materialized — see the reformulation module's contract).

    ``strategy`` is ``"factorized"`` (join of unions, default),
    ``"ucq"`` (expand, then union of joins) or ``"encoded"`` (semantic
    interval encoding: the per-atom unions collapse into identifier
    range scans — see :func:`evaluate_encoded`).
    """
    if strategy == "factorized":
        return evaluate_factorized(graph, reformulation, optimize)
    if strategy == "ucq":
        return evaluate_ucq(graph, reformulation.to_ucq(), optimize)
    if strategy == "encoded":
        return evaluate_encoded(graph, reformulation, optimize)
    raise ValueError(f"unknown strategy {strategy!r}; "
                     f"expected 'factorized', 'ucq' or 'encoded'")
