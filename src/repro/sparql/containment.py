"""Conjunctive-query containment and UCQ minimization.

The reformulations of Section II-B are unions of conjunctive queries,
and unions produced by exhaustive rewriting routinely contain
redundant conjuncts — e.g. ``?x rdf:type Person`` subsumes
``?x rdf:type Woman ∧ ?x rdf:type Person``.  Evaluating redundant
conjuncts is pure waste, so production rewriters minimize the union.

The classical tool is the homomorphism theorem (Chandra & Merlin):
``q2 ⊆ q1`` iff there is a homomorphism from ``q1`` into ``q2`` that
is the identity on the distinguished variables.  Containment is
NP-complete in query size, which is fine: reformulation conjuncts have
a handful of atoms.

:func:`minimize_ucq` drops every conjunct contained in another — the
evaluated union shrinks while the answer set provably stays the same
(a property the test suite randomizes over).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..rdf.terms import PatternTerm, Variable
from ..rdf.triples import TriplePattern
from .ast import BGPQuery

__all__ = ["find_homomorphism", "find_pattern_homomorphism",
           "is_contained_in", "minimize_ucq"]

Mapping = Dict[Variable, PatternTerm]


def _map_term(term: PatternTerm, target: PatternTerm, frozen: frozenset,
              mapping: Mapping) -> Optional[Mapping]:
    """Extend ``mapping`` so that ``term`` maps to ``target``."""
    if isinstance(term, Variable):
        if term in frozen:
            return mapping if target == term else None
        bound = mapping.get(term)
        if bound is None:
            extended = dict(mapping)
            extended[term] = target
            return extended
        return mapping if bound == target else None
    return mapping if term == target else None


def _map_atom(atom: TriplePattern, target: TriplePattern, frozen: frozenset,
              mapping: Mapping) -> Optional[Mapping]:
    current: Optional[Mapping] = mapping
    for term, target_term in zip(atom, target):
        if current is None:
            return None
        current = _map_term(term, target_term, frozen, current)
    return current


def find_pattern_homomorphism(source_atoms: Sequence[TriplePattern],
                              target_atoms: Sequence[TriplePattern],
                              frozen: frozenset = frozenset(),
                              seed: Optional[Mapping] = None
                              ) -> Optional[Mapping]:
    """A mapping of ``source_atoms``'s variables into ``target_atoms``'s
    terms sending every source atom onto *some* target atom; identity
    on ``frozen`` variables, extending ``seed``; ``None`` if none
    exists.

    This is the working core of the homomorphism theorem, exposed at
    the atom level so rule subsumption (a rule is a conjunctive query
    whose head plays the distinguished part — see
    :mod:`repro.staticcheck`) can reuse it.  Backtracking over atom
    assignments, most-constrained atom first.
    """

    # order source atoms by how constrained they are (more constants /
    # frozen variables first) to fail fast
    def constrainedness(atom: TriplePattern) -> int:
        score = 0
        for term in atom:
            if not isinstance(term, Variable) or term in frozen:
                score += 1
        return -score

    atoms = sorted(source_atoms, key=constrainedness)
    targets = list(target_atoms)

    def search(index: int, mapping: Mapping) -> Optional[Mapping]:
        if index == len(atoms):
            return mapping
        for candidate in targets:
            extended = _map_atom(atoms[index], candidate, frozen, mapping)
            if extended is not None:
                result = search(index + 1, extended)
                if result is not None:
                    return result
        return None

    return search(0, dict(seed) if seed else {})


def find_homomorphism(source: BGPQuery,
                      target: BGPQuery) -> Optional[Mapping]:
    """A homomorphism from ``source``'s atoms into ``target``'s atoms,
    identity on the distinguished variables; ``None`` if none exists.
    """
    if tuple(source.distinguished) != tuple(target.distinguished):
        return None
    frozen = frozenset(source.distinguished)
    return find_pattern_homomorphism(source.patterns, target.patterns,
                                     frozen)


def is_contained_in(sub: BGPQuery, sup: BGPQuery) -> bool:
    """``sub ⊆ sup``: every answer of ``sub`` is an answer of ``sup``
    on every graph (Chandra–Merlin: homomorphism from sup into sub).

    Conjuncts carrying *presets* (reformulation-bound constants) are
    comparable only when the presets agree — differing presets produce
    different answer columns.
    """
    if sub.preset != sup.preset:
        return False
    return find_homomorphism(sup, sub) is not None


def minimize_ucq(conjuncts: Sequence[BGPQuery]) -> List[BGPQuery]:
    """Remove every conjunct contained in another one.

    Keeps the first of two equivalent conjuncts (mutual containment),
    so the result is deterministic for a deterministic input order.
    The union's answer set is unchanged on every graph.
    """
    kept: List[BGPQuery] = []
    items = list(conjuncts)
    for i, candidate in enumerate(items):
        redundant = False
        for j, other in enumerate(items):
            if i == j:
                continue
            if not is_contained_in(candidate, other):
                continue
            # candidate ⊆ other: drop it — unless they are mutually
            # contained (equivalent) and candidate comes first
            if is_contained_in(other, candidate) and i < j:
                continue
            redundant = True
            break
        if not redundant:
            kept.append(candidate)
    return kept
