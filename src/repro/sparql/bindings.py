"""Query results: ordered rows of term bindings.

The paper defines the (complete) answer set of ``q`` against ``G`` as
the *set* ``q(G∞)`` — set semantics over the distinguished variables.
:class:`ResultSet` preserves arrival order for display but offers the
set view used whenever answer sets are compared (e.g. the
``qref(G) = q(G∞)`` correctness checks).
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from ..rdf.terms import Term, Variable

__all__ = ["ResultSet"]

Row = Tuple[Term, ...]


class ResultSet:
    """The bindings of a query's distinguished variables."""

    __slots__ = ("variables", "_rows", "_row_set", "distinct")

    def __init__(self, variables: Sequence[Variable], distinct: bool = False):
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self._rows: List[Row] = []
        # None after a bulk append that already proved uniqueness:
        # the set view rebuilds lazily the next time it is needed
        self._row_set: Optional[Set[Row]] = set()
        self.distinct = distinct

    def add(self, row: Row) -> bool:
        """Append a row; under ``distinct``, duplicates are dropped.

        Returns True iff the row was appended.
        """
        if len(row) != len(self.variables):
            raise ValueError(f"row arity {len(row)} != query arity {len(self.variables)}")
        row_set = self._row_set
        if row_set is None:
            row_set = self._row_set = set(self._rows)
        if self.distinct and row in row_set:
            return False
        self._rows.append(row)
        row_set.add(row)
        return True

    def extend_rows(self, rows: "Iterator[Row]",
                    limit: Optional[int] = None) -> bool:
        """Bulk-append projected rows; returns True once ``limit`` holds.

        Semantically ``for row in rows: add(row)`` with an early stop
        at ``limit`` appended rows, but with the per-row attribute
        lookups hoisted — the block projection pipeline lands whole
        binding blocks here.  Rows must already have the query arity
        (the bulk producers project from a fixed spec).
        """
        rows_list = self._rows
        row_set = self._row_set
        if row_set is None:
            row_set = self._row_set = set(rows_list)
        if self.distinct:
            for row in rows:
                if row in row_set:
                    continue
                rows_list.append(row)
                row_set.add(row)
                if limit is not None and len(rows_list) >= limit:
                    return True
        else:
            for row in rows:
                rows_list.append(row)
                row_set.add(row)
                if limit is not None and len(rows_list) >= limit:
                    return True
        return limit is not None and len(rows_list) >= limit

    def extend_unique_rows(self, rows: "Iterator[Row]",
                           limit: Optional[int] = None) -> bool:
        """Bulk-append rows without per-row set maintenance.

        For result sets that are not ``distinct`` (or when the caller
        has already deduplicated), nothing needs the hash set during
        the append — the set view rebuilds lazily on the next
        operation that compares answer sets.  Returns True once
        ``limit`` holds.
        """
        self._row_set = None
        rows_list = self._rows
        if limit is None:
            rows_list.extend(rows)
            return False
        for row in rows:
            rows_list.append(row)
            if len(rows_list) >= limit:
                return True
        return False

    def extend_rows_dedup(self, rows: "Iterable[Row]") -> None:
        """Append ``rows`` keeping the first occurrence of each.

        The order-preserving dedup runs at C level
        (``dict.fromkeys``), so ``distinct`` producers without a row
        limit can land an entire result stream in one call instead of
        testing membership row by row.
        """
        unique = dict.fromkeys(rows)
        rows_list = self._rows
        if rows_list:
            row_set = self._set_view()
            fresh = [row for row in unique if row not in row_set]
            rows_list.extend(fresh)
            row_set.update(fresh)
        else:
            rows_list.extend(unique)
            self._row_set = None

    def add_binding(self, binding: Dict[Variable, Term]) -> bool:
        """Append the row obtained by projecting ``binding``."""
        return self.add(tuple(binding[v] for v in self.variables))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def _set_view(self) -> Set[Row]:
        row_set = self._row_set
        if row_set is None:
            row_set = self._row_set = set(self._rows)
        return row_set

    def __contains__(self, row: Row) -> bool:
        return row in self._set_view()

    def __eq__(self, other) -> bool:
        """Set-semantics equality (the paper's answer-set equality)."""
        if isinstance(other, ResultSet):
            return (self.variables == other.variables
                    and self._set_view() == other._set_view())
        return NotImplemented

    def __repr__(self) -> str:
        return (f"<ResultSet {len(self._rows)} row(s) over "
                f"({', '.join(str(v) for v in self.variables)})>")

    def to_set(self) -> FrozenSet[Row]:
        """The answer *set* (distinct rows)."""
        return frozenset(self._set_view())

    def rows(self) -> List[Row]:
        return list(self._rows)

    def bindings(self) -> Iterator[Dict[Variable, Term]]:
        """Iterate rows as variable -> term dictionaries."""
        for row in self._rows:
            yield dict(zip(self.variables, row))

    def project(self, variables: Sequence[Variable]) -> "ResultSet":
        """A new result set keeping only ``variables`` (in that order)."""
        positions = []
        for variable in variables:
            try:
                positions.append(self.variables.index(variable))
            except ValueError:
                raise KeyError(f"variable {variable} not in result set") from None
        projected = ResultSet(variables, distinct=self.distinct)
        for row in self._rows:
            projected.add(tuple(row[i] for i in positions))
        return projected

    def pretty(self, max_rows: Optional[int] = 20) -> str:
        """A small fixed-width table for console output."""
        header = [str(v) for v in self.variables]
        shown = self._rows if max_rows is None else self._rows[:max_rows]
        body = [[_short(term) for term in row] for row in shown]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [" | ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        hidden = len(self._rows) - len(shown)
        if hidden > 0:
            lines.append(f"... {hidden} more row(s)")
        return "\n".join(lines)


def _short(term: Term) -> str:
    text = term.n3()
    if len(text) > 40:
        text = "..." + text[-37:]
    return text
