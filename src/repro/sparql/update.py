"""SPARQL Update (ground subset): ``INSERT DATA`` / ``DELETE DATA``.

The paper's performance story revolves around updates — Figure 3 has
four update-kind thresholds — so the facade deserves an update
*language*, not just a Python API.  The supported subset is the ground
one (``INSERT DATA`` and ``DELETE DATA`` with concrete triples, no
WHERE templates), which is exactly the update model of [12]: explicit
triples arrive and leave; the reasoning layer deals with consequences.

Multiple operations may appear in one request, separated by ``;``,
and execute in order:

.. code-block:: sparql

    PREFIX ex: <http://example.org/>
    DELETE DATA { ex:tom a ex:Kitten } ;
    INSERT DATA { ex:tom a ex:Cat . ex:Cat rdfs:subClassOf ex:Mammal }
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..rdf.namespaces import NamespaceManager
from ..rdf.terms import Variable
from ..rdf.triples import Triple
from .parser import SPARQLSyntaxError, _Parser

__all__ = ["UpdateOperation", "parse_update"]

_KEYWORD_RE = re.compile(r"(?i:\b(INSERT|DELETE)\s+DATA\b)")


@dataclass(frozen=True)
class UpdateOperation:
    """One ground update: ``kind`` is ``"insert"`` or ``"delete"``."""

    kind: str
    triples: Tuple[Triple, ...]

    def __len__(self) -> int:
        return len(self.triples)


class _UpdateParser(_Parser):
    """Reuses the query tokenizer/term machinery for update requests."""

    def parse(self) -> List[UpdateOperation]:
        operations: List[UpdateOperation] = []
        while self.at_keyword("PREFIX"):
            self.next()
            kind, prefix_token = self.next()
            if kind != "pname":
                raise SPARQLSyntaxError(
                    f"expected a prefix name after PREFIX, got {prefix_token!r}")
            kind, uri_token = self.next()
            if kind != "uri":
                raise SPARQLSyntaxError(
                    f"expected an IRI after PREFIX, got {uri_token!r}")
            self.namespaces.bind(prefix_token.rstrip(":"), uri_token[1:-1])

        while self.peek() is not None:
            operations.append(self.operation())
            token = self.peek()
            if token == ("punct", ";"):
                self.next()
        if not operations:
            raise SPARQLSyntaxError("empty update request")
        return operations

    def operation(self) -> UpdateOperation:
        kind_token = self.next()
        if kind_token[0] != "update_kw":
            raise SPARQLSyntaxError(
                f"expected INSERT DATA or DELETE DATA, got {kind_token[1]!r}")
        kind = "insert" if kind_token[1].upper().startswith("INSERT") \
            else "delete"
        self.expect_punct("{")
        patterns = self.triples_block()
        self.expect_punct("}")
        if not patterns:
            raise SPARQLSyntaxError(f"empty {kind.upper()} DATA block")
        triples: List[Triple] = []
        for pattern in patterns:
            if not pattern.is_ground() or any(
                    isinstance(term, Variable) for term in pattern):
                raise SPARQLSyntaxError(
                    f"{kind.upper()} DATA requires ground triples, got "
                    f"{pattern.n3()}")
            triples.append(pattern.to_triple())
        return UpdateOperation(kind, tuple(triples))


def _tokenize_update(text: str):
    """Pre-pass: collapse 'INSERT DATA'/'DELETE DATA' into one token so
    the shared tokenizer needs no new keyword states."""
    pieces = []
    position = 0
    for match in _KEYWORD_RE.finditer(text):
        pieces.append(("text", text[position:match.start()]))
        pieces.append(("kw", match.group(0)))
        position = match.end()
    pieces.append(("text", text[position:]))
    return pieces


def parse_update(text: str,
                 namespaces: Optional[NamespaceManager] = None
                 ) -> List[UpdateOperation]:
    """Parse an update request into its ordered operations."""
    parser = _UpdateParser.__new__(_UpdateParser)
    # tokenize around the two-word keywords, then stitch token streams
    tokens = []
    from .parser import _tokenize

    for kind, piece in _tokenize_update(text):
        if kind == "kw":
            tokens.append(("update_kw", piece))
        elif piece.strip():
            tokens.extend(_tokenize(piece))
    parser.tokens = tokens
    parser.position = 0
    parser.namespaces = (namespaces.copy() if namespaces is not None
                         else NamespaceManager())
    parser._blank_vars = {}
    return parser.parse()
