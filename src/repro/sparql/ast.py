"""SPARQL BGP query AST.

The paper's query dialect is the basic graph pattern (BGP) subset of
SPARQL — conjunctive queries over triple patterns (Section II-A).  A
:class:`BGPQuery` carries:

* ``patterns`` — the conjunction of triple patterns;
* ``distinguished`` — the projected (SELECT) variables, i.e. the head
  of the conjunctive query; other variables are existential;
* ``preset`` — variable bindings fixed *before* evaluation.  Empty for
  user queries; the reformulation engine uses presets to remember the
  schema constants it bound a distinguished variable to;
* ``distinct`` / ``limit`` — the evaluation modifiers supported by the
  dialect.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from ..rdf.terms import Variable
from ..rdf.triples import Substitution, TriplePattern

__all__ = ["BGPQuery", "canonical_form"]


class BGPQuery:
    """An immutable SPARQL basic-graph-pattern (conjunctive) query."""

    __slots__ = ("patterns", "distinguished", "preset", "distinct", "limit", "_hash")

    def __init__(self, patterns: Sequence[TriplePattern],
                 distinguished: Optional[Sequence[Variable]] = None,
                 preset: Optional[Substitution] = None,
                 distinct: bool = False,
                 limit: Optional[int] = None):
        pattern_tuple = tuple(patterns)
        if not pattern_tuple:
            raise ValueError("a BGP query needs at least one triple pattern")
        all_variables: set = set()
        for pattern in pattern_tuple:
            all_variables |= pattern.variables()
        if distinguished is None:
            # SELECT *: every variable, in first-appearance order
            ordered: List[Variable] = []
            for pattern in pattern_tuple:
                for term in pattern:
                    if isinstance(term, Variable) and term not in ordered:
                        ordered.append(term)
            distinguished_tuple = tuple(ordered)
        else:
            distinguished_tuple = tuple(distinguished)
            preset_vars = set(preset or ())
            unknown = set(distinguished_tuple) - all_variables - preset_vars
            if unknown:
                names = ", ".join(sorted(str(v) for v in unknown))
                raise ValueError(f"distinguished variables not in query: {names}")
        object.__setattr__(self, "patterns", pattern_tuple)
        object.__setattr__(self, "distinguished", distinguished_tuple)
        object.__setattr__(self, "preset", dict(preset) if preset else {})
        object.__setattr__(self, "distinct", distinct)
        object.__setattr__(self, "limit", limit)
        object.__setattr__(self, "_hash", hash((
            pattern_tuple, distinguished_tuple,
            tuple(sorted(self.preset.items(), key=lambda kv: kv[0].name)),
            distinct, limit,
        )))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("BGPQuery is immutable")

    def __eq__(self, other) -> bool:
        return (isinstance(other, BGPQuery)
                and other.patterns == self.patterns
                and other.distinguished == self.distinguished
                and other.preset == self.preset
                and other.distinct == self.distinct
                and other.limit == self.limit)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"<BGPQuery {self.to_sparql()!r}>"

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def variables(self) -> FrozenSet[Variable]:
        result: set = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return frozenset(result)

    def existential_variables(self) -> FrozenSet[Variable]:
        """Variables that are not projected (non-distinguished)."""
        return self.variables() - frozenset(self.distinguished)

    def arity(self) -> int:
        """Number of projected variables."""
        return len(self.distinguished)

    def size(self) -> int:
        """Number of triple patterns (atoms)."""
        return len(self.patterns)

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------

    def substitute(self, binding: Substitution,
                   record_preset: bool = True) -> "BGPQuery":
        """Bind variables to constants across the whole query.

        When a *distinguished* variable is bound, the binding is added
        to ``preset`` (with ``record_preset=True``) so evaluation still
        reports a value for it — this is how reformulation binds a
        property/class variable to a schema constant without losing it
        from the answer.
        """
        new_patterns = [p.substitute(binding) for p in self.patterns]
        new_preset = dict(self.preset)
        if record_preset:
            for variable, value in binding.items():
                if variable in self.distinguished:
                    new_preset[variable] = value
        return BGPQuery(new_patterns, self.distinguished, new_preset,
                        self.distinct, self.limit)

    def replace_pattern(self, index: int, pattern: TriplePattern) -> "BGPQuery":
        """A copy with the atom at ``index`` replaced."""
        new_patterns = list(self.patterns)
        new_patterns[index] = pattern
        return BGPQuery(new_patterns, self.distinguished, self.preset,
                        self.distinct, self.limit)

    def with_modifiers(self, distinct: Optional[bool] = None,
                       limit: Optional[int] = None) -> "BGPQuery":
        return BGPQuery(self.patterns, self.distinguished, self.preset,
                        self.distinct if distinct is None else distinct,
                        self.limit if limit is None else limit)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def to_sparql(self) -> str:
        """Render back to SPARQL surface syntax."""
        head = " ".join(str(v) for v in self.distinguished) or "*"
        distinct = "DISTINCT " if self.distinct else ""
        body = " ".join(p.n3() for p in self.patterns)
        text = f"SELECT {distinct}{head} WHERE {{ {body} }}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


def canonical_form(query: BGPQuery) -> tuple:
    """A hashable key identifying ``query`` up to renaming of its
    existential variables and reordering of its atoms.

    Used by the reformulation engine to deduplicate rewritings that
    differ only in the fresh variables introduced along the way.  The
    renaming is a deterministic first-occurrence scheme over sorted
    atoms — a cheap heuristic, not full graph canonicalization: two
    queries with the same key are always equivalent, occasional
    distinct keys for equivalent queries merely leave a duplicate
    conjunct in the union (harmless under set semantics).
    """
    existential = query.existential_variables()

    def shape_key(pattern: TriplePattern) -> tuple:
        parts = []
        for term in pattern:
            if isinstance(term, Variable) and term in existential:
                parts.append(("?", ""))
            else:
                parts.append(("t",) + term.sort_key())
        return tuple(parts)

    ordered = sorted(query.patterns, key=shape_key)
    renaming: Dict[Variable, str] = {}
    atoms: List[tuple] = []
    for pattern in ordered:
        atom = []
        for term in pattern:
            if isinstance(term, Variable) and term in existential:
                if term not in renaming:
                    renaming[term] = f"_e{len(renaming)}"
                atom.append(("?", renaming[term]))
            else:
                atom.append(("t",) + term.sort_key())
        atoms.append(tuple(atom))
    atoms.sort()
    preset_key = tuple(sorted(
        (variable.name,) + value.sort_key()
        for variable, value in query.preset.items()
    ))
    return (tuple(atoms), tuple(v.name for v in query.distinguished), preset_key)
