"""Union queries: SELECT over ``{ … } UNION { … }`` groups.

Reformulation turns a BGP into a *union* of BGPs, so the union is the
natural closure of the paper's dialect: this module makes it a
first-class query form users can pose directly (and that the engine
can answer under every strategy).

A :class:`UnionQuery` is a non-empty sequence of branch BGPs sharing
one projection; its answer set is the set-union of the branches'
answer sets.  Every projected variable must be bound by every branch
(the engine's results are total rows — SPARQL's unbound columns are
out of scope, like the rest of non-BGP SPARQL).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..rdf.terms import Variable
from .ast import BGPQuery
from .bindings import ResultSet

__all__ = ["UnionQuery"]


class UnionQuery:
    """An immutable union of conjunctive queries with one projection."""

    __slots__ = ("branches", "distinguished", "distinct", "limit", "_hash")

    def __init__(self, branches: Sequence[BGPQuery],
                 distinguished: Optional[Sequence[Variable]] = None,
                 distinct: bool = True,
                 limit: Optional[int] = None):
        branch_tuple = tuple(branches)
        if not branch_tuple:
            raise ValueError("a union query needs at least one branch")
        if distinguished is None:
            # default projection: variables every branch binds, in the
            # first branch's first-appearance order
            common = set(branch_tuple[0].variables())
            for branch in branch_tuple[1:]:
                common &= branch.variables()
            ordered: List[Variable] = []
            for pattern in branch_tuple[0].patterns:
                for term in pattern:
                    if isinstance(term, Variable) and term in common \
                            and term not in ordered:
                        ordered.append(term)
            distinguished_tuple = tuple(ordered)
            if not distinguished_tuple:
                raise ValueError("the branches share no variable; give an "
                                 "explicit projection")
        else:
            distinguished_tuple = tuple(distinguished)
            for index, branch in enumerate(branch_tuple):
                bound = branch.variables() | set(branch.preset)
                missing = set(distinguished_tuple) - bound
                if missing:
                    names = ", ".join(sorted(str(v) for v in missing))
                    raise ValueError(
                        f"branch {index + 1} does not bind {names}")
        # re-project each branch onto the shared head
        projected = tuple(
            BGPQuery(branch.patterns, distinguished_tuple, branch.preset,
                     distinct=False, limit=None)
            for branch in branch_tuple
        )
        object.__setattr__(self, "branches", projected)
        object.__setattr__(self, "distinguished", distinguished_tuple)
        object.__setattr__(self, "distinct", distinct)
        object.__setattr__(self, "limit", limit)
        object.__setattr__(self, "_hash",
                           hash((projected, distinguished_tuple, distinct,
                                 limit)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("UnionQuery is immutable")

    def __eq__(self, other) -> bool:
        return (isinstance(other, UnionQuery)
                and other.branches == self.branches
                and other.distinguished == self.distinguished
                and other.distinct == self.distinct
                and other.limit == self.limit)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"<UnionQuery {len(self.branches)} branch(es)>"

    def arity(self) -> int:
        return len(self.distinguished)

    def to_sparql(self) -> str:
        head = " ".join(str(v) for v in self.distinguished)
        distinct = "DISTINCT " if self.distinct else ""
        groups = " UNION ".join(
            "{ " + " ".join(p.n3() for p in branch.patterns) + " }"
            for branch in self.branches
        )
        text = f"SELECT {distinct}{head} WHERE {{ {groups} }}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text

    def evaluate(self, graph, optimize: bool = True) -> ResultSet:
        """Set-union of the branches' answers over ``graph``."""
        from .evaluator import evaluate

        results = ResultSet(self.distinguished, distinct=True)
        for branch in self.branches:
            for row in evaluate(graph, branch, optimize):
                results.add(row)
                if self.limit is not None and len(results) >= self.limit:
                    return results
        return results
