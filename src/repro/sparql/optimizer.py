"""Join ordering for BGP evaluation.

BGPs are evaluated as a left-deep chain of index nested-loop joins
over the graph's triple indexes; the order of the atoms dominates
cost.  The optimizer is the classic greedy, selectivity-driven one
used by RDF engines such as RDF-3X [23]: repeatedly pick the cheapest
next atom given which variables the atoms chosen so far have bound.

Cardinalities for constant positions are *exact* (the index maintains
counts); a variable position already bound by earlier atoms is
credited a fixed selectivity factor, since its actual binding is
unknown at planning time.  The ABL-JOIN ablation benchmarks this
optimizer against the naive textual order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern

__all__ = ["estimate_cardinality", "order_patterns", "explain_plan",
           "PlanStep", "BOUND_VARIABLE_SELECTIVITY"]

#: Credit applied per variable position that earlier joins have bound.
BOUND_VARIABLE_SELECTIVITY = 0.1


def estimate_cardinality(graph: Graph, pattern: TriplePattern,
                         bound: FrozenSet[Variable] = frozenset()) -> float:
    """Estimated number of rows produced by scanning ``pattern``.

    Exact for the constant positions; each position holding an
    already-bound variable scales the estimate by
    :data:`BOUND_VARIABLE_SELECTIVITY`.
    """
    constants = [None if isinstance(term, Variable) else term
                 for term in pattern]
    base = float(graph.count(*constants))
    for term in pattern:
        if isinstance(term, Variable) and term in bound:
            base *= BOUND_VARIABLE_SELECTIVITY
    return base


@dataclass(frozen=True)
class PlanStep:
    """One step of an explained join plan."""

    position: int                 # 1-based step number
    pattern: TriplePattern
    estimate: float               # estimated rows at planning time
    bound_before: FrozenSet[Variable]

    def describe(self) -> str:
        bound = ", ".join(sorted(str(v) for v in self.bound_before)) or "-"
        return (f"{self.position}. scan {self.pattern.n3().rstrip(' .')} "
                f"(est. {self.estimate:.1f} rows; bound: {bound})")


def explain_plan(graph: Graph, query) -> List[PlanStep]:
    """The join plan the evaluator would run for ``query``, with the
    optimizer's estimates — an EXPLAIN for BGPs.

    >>> # steps = explain_plan(graph, parse_query("SELECT ..."))
    >>> # print("\\n".join(s.describe() for s in steps))
    """
    patterns = list(query.patterns)
    order = order_patterns(graph, patterns)
    steps: List[PlanStep] = []
    bound: Set[Variable] = set()
    for position, index in enumerate(order, start=1):
        pattern = patterns[index]
        steps.append(PlanStep(
            position=position,
            pattern=pattern,
            estimate=estimate_cardinality(graph, pattern, frozenset(bound)),
            bound_before=frozenset(bound),
        ))
        bound |= pattern.variables()
    return steps


def order_patterns(graph: Graph, patterns: Sequence[TriplePattern],
                   pre_bound: Iterable[Variable] = ()) -> List[int]:
    """Greedy join order; returns atom *indices* in evaluation order.

    Ties prefer atoms connected to the already-bound variables (to
    avoid Cartesian products) and then the original order, keeping
    plans deterministic.
    """
    remaining = list(range(len(patterns)))
    bound: Set[Variable] = set(pre_bound)
    order: List[int] = []
    while remaining:
        best_index = None
        best_key: Tuple[float, int, int] = (float("inf"), 2, 0)
        for index in remaining:
            pattern = patterns[index]
            variables = pattern.variables()
            connected = 0 if (not order) or (variables & bound) or not variables else 1
            estimate = estimate_cardinality(graph, pattern, frozenset(bound))
            key = (estimate, connected, index)
            # `connected` dominating `estimate` would also be defensible;
            # RDF-3X-style planners weigh cardinality first, which a
            # Cartesian-product penalty approximates here:
            if connected:
                key = (estimate * 1e6, connected, index)
            if key < best_key:
                best_key, best_index = key, index
        assert best_index is not None
        order.append(best_index)
        bound |= patterns[best_index].variables()
        remaining.remove(best_index)
    return order
