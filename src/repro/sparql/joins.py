"""Set-at-a-time join operators over encoded triple indexes.

The classic evaluator (:mod:`repro.sparql.evaluator`) is an
object-at-a-time index nested-loop join: every intermediate row costs
a decoded :class:`~repro.rdf.triples.Triple`, a pattern match and two
dictionary copies.  This module compiles a BGP once into a *plan over
identifier space* — variables become integer slots, constants become
dictionary identifiers — and executes it with three operators:

* **scan** — an index range lookup extending the current binding; the
  universal fallback, correct on every backend and index layout;
* **merge intersection** — two patterns whose only free variable is
  the same ``?v`` and whose bound positions form a sorted-run prefix
  are answered by merging the two sorted suffix runs;
* **leapfrog intersection** — the k-ary generalization (leapfrog
  triejoin's unary core): k sorted cursors gallop to their next
  common value via binary-search seeks.

Operator selection uses the existing optimizer statistics:
:func:`~repro.sparql.optimizer.order_patterns` fixes the join order,
then every maximal group of order-compatible single-free-variable
patterns becomes one intersection step.  Patterns that are not
order-compatible (ablated index layouts, repeated variables) fall
back to scans, so plans exist for every query on every layout.

Only terms leaving the pipeline are decoded; intermediate bindings
are flat integer lists.

Execution comes in two shapes sharing one compiled plan.  The
*scalar* path (kernel mode ``scalar``) is the per-binding generator
descent — the reference implementation.  The default *block* path
(:func:`repro.kernels.vectorized`) pushes whole lists of bindings
through each step: scan and interval steps read zero-copy run views
(:meth:`~repro.rdf.columnar.ColumnarTripleIndex.values_block_order`
and friends), intersections call the
:func:`~repro.kernels.intersect_pair`/:func:`~repro.kernels.
intersect_many` kernels on those views, and only the binding
extension itself remains a Python loop.  Both paths produce the same
bindings in the same order and keep the mode-invariant observability
counters (``joins.scan_steps``, ``joins.intersect_steps``,
``joins.intermediate_bindings``, ``encoding.*``) identical;
``joins.leapfrog_seeks`` only advances where a seek loop actually ran
(scalar mode or a delta-state fallback).
"""

from __future__ import annotations

from itertools import chain, islice
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from .. import kernels
from ..cancellation import CancellationToken, current_token
from ..obs import get_metrics, span
from ..rdf.columnar import ColumnarTripleIndex
from ..rdf.graph import Graph
from ..rdf.terms import Term, Variable
from ..rdf.triples import Substitution, TriplePattern
from .ast import BGPQuery
from .bindings import ResultSet
from .optimizer import order_patterns

__all__ = ["BGPPlan", "IntervalPattern", "compile_bgp", "compile_mixed_bgp",
           "iter_bindings", "evaluate_columnar", "leapfrog"]

#: An encoded binding: one integer (or None) per variable slot.
EncodedBinding = List[Optional[int]]

#: Compiled atom position: (is_variable, identifier-or-slot).
_Position = Tuple[bool, int]

#: seeds pulled per driver chunk / re-chunk cap between block steps
_BLOCK_SEEDS = 256
_BLOCK_CAP = 4096

#: rows emitted between cancellation polls inside block loops
_POLL_BLOCK = 1024


def _emit_values(binding: EncodedBinding, slot: int, values,
                 out: List[EncodedBinding],
                 token: Optional[CancellationToken]) -> int:
    """Extend ``binding`` once per value in a flat buffer; the shared
    inner loop of the block scan/intersect paths.  Polls are strided:
    one check per :data:`_POLL_BLOCK` emitted rows."""
    append = out.append
    if token is None:
        for value in values:
            extended = binding[:]
            extended[slot] = value
            append(extended)
    else:
        for start in range(0, len(values), _POLL_BLOCK):
            token.raise_if_cancelled()
            for value in values[start:start + _POLL_BLOCK]:
                extended = binding[:]
                extended[slot] = value
                append(extended)
    return len(values)


def _emit_rows(binding: EncodedBinding, view, checks, assigns, dup_checks,
               out: List[EncodedBinding],
               token: Optional[CancellationToken],
               scanned: int) -> Tuple[int, int]:
    """Generic row loop over a flat ``3*n`` triple view: filter by
    ``checks``, extend by ``assigns``.  Returns ``(emitted, scanned)``
    so callers carry the poll stride across views."""
    emitted = 0
    append = out.append
    for base in range(0, len(view), 3):
        scanned += 1
        if token is not None and scanned & 0xFF == 0:
            token.raise_if_cancelled()
        if checks and any(view[base + j] != value for j, value in checks):
            continue
        extended = binding[:]
        for j, slot in assigns:
            extended[slot] = view[base + j]
        if dup_checks and any(view[base + j] != extended[slot]
                              for j, slot in dup_checks):
            continue
        emitted += 1
        append(extended)
    return emitted, scanned


def _default_extend_block(step, graph: Graph, block: List[EncodedBinding],
                          counts: List[int],
                          token: Optional[CancellationToken]
                          ) -> List[EncodedBinding]:
    """Block execution by looping the step's scalar ``run`` — the
    fallback for steps with no block specialization (hash-backend
    scans, member expansions)."""
    out: List[EncodedBinding] = []
    for binding in block:
        out.extend(step.run(graph, binding, counts, token))
    return out


class IntervalPattern:
    """An atom whose ``position`` matches any identifier in ``ranges``.

    The semantic interval encoding (:mod:`repro.reasoning.encoding`)
    collapses a reformulation's per-atom union — "this class or any of
    its subclasses", "any property with this effective domain" — into
    identifier ranges at a single position.  ``pattern`` is the atom's
    skeleton: its other two positions compile as usual (variables,
    constants, repeats); the term at ``position`` is only advisory (the
    original class/property constant, kept for EXPLAIN output).
    ``members`` lists the same identifiers explicitly — the fallback
    set used when no sorted run can serve the range (hash backends,
    ablated layouts).
    """

    __slots__ = ("pattern", "position", "ranges", "members")

    def __init__(self, pattern: TriplePattern, position: int,
                 ranges: Tuple[Tuple[int, int], ...],
                 members: Tuple[int, ...]):
        self.pattern = pattern
        self.position = position
        self.ranges = ranges
        self.members = members

    def __repr__(self) -> str:
        return (f"IntervalPattern({self.pattern!r}, position="
                f"{self.position}, ranges={self.ranges!r})")


class _ScanStep:
    """Index-nested-loop step: range-scan one atom, extend the binding.

    Backend-generic — drives the index's eight-shape ``match``.
    """

    __slots__ = ("template", "bound", "assigns", "dup_checks", "pattern")

    def __init__(self, positions: Sequence[_Position], bound_slots: frozenset,
                 pattern: TriplePattern):
        template: List[Optional[int]] = [None, None, None]
        bound: List[Tuple[int, int]] = []       # (position, slot)
        assigns: List[Tuple[int, int]] = []     # (position, slot)
        dup_checks: List[Tuple[int, int]] = []  # (position, slot)
        seen: set = set()
        for position, (is_var, value) in enumerate(positions):
            if not is_var:
                template[position] = value
            elif value in bound_slots:
                bound.append((position, value))
            elif value in seen:
                dup_checks.append((position, value))
            else:
                seen.add(value)
                assigns.append((position, value))
        self.template = template
        self.bound = bound
        self.assigns = assigns
        self.dup_checks = dup_checks
        self.pattern = pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        args = list(self.template)
        for position, slot in self.bound:
            args[position] = binding[slot]
        counts[0] += 1
        assigns = self.assigns
        dup_checks = self.dup_checks
        scanned = 0
        for triple in graph.index.match(args[0], args[1], args[2]):
            scanned += 1
            if token is not None and scanned & 0xFF == 0:
                token.raise_if_cancelled()
            extended = binding[:]
            for position, slot in assigns:
                extended[slot] = triple[position]
            if dup_checks and any(triple[position] != extended[slot]
                                  for position, slot in dup_checks):
                continue
            counts[3] += 1
            yield extended

    # hash indexes expose no sorted runs to slice: block execution is
    # the scalar scan per binding (still skips the generator descent)
    extend_block = _default_extend_block


class _SortedScanStep:
    """Range-scan step specialized to one sorted run.

    On columnar graphs the scan order depends only on which positions
    are bound — known at compile time — so the order choice, the
    permutation and the residual checks are all resolved here once,
    and the inner loop works directly on permuted triples from the
    run: one binary-searched range per execution, no per-lookup order
    selection and no back-permutation of components nobody reads.
    """

    __slots__ = ("order_index", "prefix_spec", "const_checks",
                 "bound_checks", "assigns", "dup_checks", "value_slot",
                 "pattern")

    def __init__(self, index: ColumnarTripleIndex,
                 positions: Sequence[_Position], bound_slots: frozenset,
                 pattern: TriplePattern):
        bound_positions = frozenset(
            i for i, (is_var, value) in enumerate(positions)
            if not is_var or value in bound_slots)
        order_index, prefix_len = index.best_order(bound_positions)
        permutation = index.permutation(order_index)
        self.order_index = order_index
        # prefix components in permuted order: constants or bound slots
        self.prefix_spec = tuple(positions[permutation[j]]
                                 for j in range(prefix_len))
        const_checks: List[Tuple[int, int]] = []  # (permuted pos, id)
        bound_checks: List[Tuple[int, int]] = []  # (permuted pos, slot)
        assigns: List[Tuple[int, int]] = []       # (permuted pos, slot)
        dup_checks: List[Tuple[int, int]] = []    # (permuted pos, slot)
        seen: set = set()
        for j in range(prefix_len, 3):
            is_var, value = positions[permutation[j]]
            if not is_var:
                const_checks.append((j, value))
            elif value in bound_slots:
                bound_checks.append((j, value))
            elif value in seen:
                dup_checks.append((j, value))
            else:
                seen.add(value)
                assigns.append((j, value))
        self.const_checks = const_checks
        self.bound_checks = bound_checks
        self.assigns = assigns
        self.dup_checks = dup_checks
        # the dominant rule-engine shape — two bound prefix positions,
        # one free suffix value — runs through the index's value scan
        self.value_slot = (assigns[0][1]
                           if (prefix_len == 2 and len(assigns) == 1
                               and not const_checks and not bound_checks
                               and not dup_checks)
                           else None)
        self.pattern = pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        counts[0] += 1
        prefix = tuple(binding[value] if is_var else value
                       for is_var, value in self.prefix_spec)
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        slot = self.value_slot
        if slot is not None:
            bindings = 0
            for value in index.values_order(self.order_index,
                                            prefix[0], prefix[1]):
                if token is not None and bindings & 0xFF == 0:
                    token.raise_if_cancelled()
                extended = binding[:]
                extended[slot] = value
                bindings += 1
                yield extended
            counts[3] += bindings
            return
        checks = self.const_checks
        if self.bound_checks:
            checks = checks + [(j, binding[slot])
                               for j, slot in self.bound_checks]
        assigns = self.assigns
        dup_checks = self.dup_checks
        scanned = 0
        for t in index.scan_order(self.order_index, prefix):
            scanned += 1
            if token is not None and scanned & 0xFF == 0:
                token.raise_if_cancelled()
            if checks and any(t[j] != value for j, value in checks):
                continue
            extended = binding[:]
            for j, slot in assigns:
                extended[slot] = t[j]
            if dup_checks and any(t[j] != extended[slot]
                                  for j, slot in dup_checks):
                continue
            counts[3] += 1
            yield extended

    def extend_block(self, graph: Graph, block: List[EncodedBinding],
                     counts: List[int],
                     token: Optional[CancellationToken]
                     ) -> List[EncodedBinding]:
        """Block scan: one zero-copy run view per binding, no
        per-triple generator machinery.  Bindings whose range has
        pending delta state fall back to the scalar ``run``."""
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        out: List[EncodedBinding] = []
        order_index = self.order_index
        prefix_spec = self.prefix_spec
        slot = self.value_slot
        if slot is not None:
            (a_var, a_val), (b_var, b_val) = prefix_spec
            if not a_var:
                # constant leading component (the dominant shape —
                # it's usually the predicate): bisect its span once
                # for the whole block
                read = index.values_reader_order(order_index, a_val)
                for binding in block:
                    values = read(binding[b_val] if b_var else b_val)
                    counts[0] += 1
                    counts[3] += _emit_values(binding, slot, values, out,
                                              token)
                return out
            # leading component is a bound variable: consecutive
            # bindings usually repeat it (blocks are binding-major),
            # so memoize one reader per distinct value seen
            make_reader = index.values_reader_order
            readers: Dict[int, Callable[[int], Any]] = {}
            for binding in block:
                first = binding[a_val]
                read = readers.get(first)
                if read is None:
                    read = readers[first] = make_reader(order_index, first)
                values = read(binding[b_val] if b_var else b_val)
                counts[0] += 1
                counts[3] += _emit_values(binding, slot, values, out, token)
            return out
        view_order = index.view_order
        const_checks = self.const_checks
        bound_checks = self.bound_checks
        assigns = self.assigns
        dup_checks = self.dup_checks
        scanned = 0
        for binding in block:
            prefix = tuple(binding[value] if is_var else value
                           for is_var, value in prefix_spec)
            view = view_order(order_index, prefix)
            if view is None:
                out.extend(self.run(graph, binding, counts, token))
                continue
            counts[0] += 1
            checks = const_checks
            if bound_checks:
                checks = checks + [(j, binding[s]) for j, s in bound_checks]
            if not checks and not dup_checks and len(assigns) == 1:
                j, free_slot = assigns[0]
                counts[3] += _emit_values(binding, free_slot, view[j::3],
                                          out, token)
                continue
            emitted, scanned = _emit_rows(binding, view, checks, assigns,
                                          dup_checks, out, token, scanned)
            counts[3] += emitted
        return out


class _IntersectStep:
    """Merge (k=2) / leapfrog (k>2) intersection of sorted suffix runs.

    Each cursor is one atom reduced to a sorted stream of candidate
    values for the shared variable; the leapfrog loop emits exactly
    the values on which all streams agree.
    """

    __slots__ = ("slot", "cursors", "patterns")

    def __init__(self, slot: int,
                 cursors: Sequence[Tuple[int, Tuple[_Position, _Position]]],
                 patterns: Sequence[TriplePattern]):
        self.slot = slot
        self.cursors = tuple(cursors)
        self.patterns = tuple(patterns)

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        counts[1] += 1
        seeks: List[Callable[[int], Optional[int]]] = []
        for order_index, prefix_spec in self.cursors:
            (a_var, a_val), (b_var, b_val) = prefix_spec
            prefix = (binding[a_val] if a_var else a_val,
                      binding[b_val] if b_var else b_val)
            runs_seek = index.seek_in
            seeks.append(
                lambda v, oi=order_index, pre=prefix: runs_seek(oi, pre, v))
        slot = self.slot
        for value in leapfrog(seeks, counts, token):
            extended = binding[:]
            extended[slot] = value
            counts[3] += 1
            yield extended

    def extend_block(self, graph: Graph, block: List[EncodedBinding],
                     counts: List[int],
                     token: Optional[CancellationToken]
                     ) -> List[EncodedBinding]:
        """Block intersection: fetch every cursor's value run as one
        flat buffer and hand the whole set to the intersection
        kernels — no per-value seek loop."""
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        out: List[EncodedBinding] = []
        slot = self.slot
        intersect = kernels.intersect_many
        # one resolved cursor per atom: (reader-or-None, spec parts);
        # constant leading components bisect their span once per block
        resolved = []
        for order_index, prefix_spec in self.cursors:
            (a_var, a_val), (b_var, b_val) = prefix_spec
            read = (index.values_reader_order(order_index, a_val)
                    if not a_var else None)
            resolved.append((read, order_index, a_val, b_var, b_val))
        values_block = index.values_block_order
        for binding in block:
            counts[1] += 1
            buffers = [
                read(binding[b_val] if b_var else b_val) if read is not None
                else values_block(order_index, binding[a_val],
                                  binding[b_val] if b_var else b_val)
                for read, order_index, a_val, b_var, b_val in resolved]
            common = intersect(buffers, token)
            counts[3] += _emit_values(binding, slot, common, out, token)
        return out


class _IntervalSortedScanStep:
    """Range-scan step for one interval atom over a sorted run.

    The bound positions form the run prefix; the interval position
    comes right after it, so every ``(lo, hi)`` range is one binary-
    searched contiguous walk (``scan_order_between``).  Built by
    :meth:`try_build` only when the layout has such a run; otherwise
    the member-expansion fallback executes the atom.
    """

    __slots__ = ("order_index", "prefix_spec", "ranges", "const_checks",
                 "bound_checks", "assigns", "dup_checks", "pattern")

    def __init__(self, order_index: int, prefix_spec, ranges, const_checks,
                 bound_checks, assigns, dup_checks,
                 pattern: TriplePattern):
        self.order_index = order_index
        self.prefix_spec = prefix_spec
        self.ranges = ranges
        self.const_checks = const_checks
        self.bound_checks = bound_checks
        self.assigns = assigns
        self.dup_checks = dup_checks
        self.pattern = pattern

    @classmethod
    def try_build(cls, index: ColumnarTripleIndex,
                  positions: Sequence[_Position], spec: "IntervalPattern",
                  bound_slots: frozenset
                  ) -> Optional["_IntervalSortedScanStep"]:
        ranged = spec.position
        bound_positions = [
            i for i, (is_var, value) in enumerate(positions)
            if i != ranged and (not is_var or value in bound_slots)]
        order_index = index.order_for(bound_positions, ranged)
        if order_index is None:
            return None
        permutation = index.permutation(order_index)
        width = len(bound_positions)
        prefix_spec = tuple(positions[permutation[j]] for j in range(width))
        const_checks: List[Tuple[int, int]] = []  # (permuted pos, id)
        bound_checks: List[Tuple[int, int]] = []  # (permuted pos, slot)
        assigns: List[Tuple[int, int]] = []       # (permuted pos, slot)
        dup_checks: List[Tuple[int, int]] = []    # (permuted pos, slot)
        seen: set = set()
        for j in range(width + 1, 3):
            is_var, value = positions[permutation[j]]
            if not is_var:
                const_checks.append((j, value))
            elif value in bound_slots:
                bound_checks.append((j, value))
            elif value in seen:
                dup_checks.append((j, value))
            else:
                seen.add(value)
                assigns.append((j, value))
        return cls(order_index, prefix_spec, spec.ranges, const_checks,
                   bound_checks, assigns, dup_checks, spec.pattern)

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        prefix = tuple(binding[value] if is_var else value
                       for is_var, value in self.prefix_spec)
        checks = self.const_checks
        if self.bound_checks:
            checks = checks + [(j, binding[slot])
                               for j, slot in self.bound_checks]
        assigns = self.assigns
        dup_checks = self.dup_checks
        scan_between = index.scan_order_between
        order_index = self.order_index
        scanned = 0
        for lo, hi in self.ranges:
            counts[5] += 1
            for t in scan_between(order_index, prefix, lo, hi):
                scanned += 1
                if token is not None and scanned & 0xFF == 0:
                    token.raise_if_cancelled()
                if checks and any(t[j] != value for j, value in checks):
                    continue
                extended = binding[:]
                for j, slot in assigns:
                    extended[slot] = t[j]
                if dup_checks and any(t[j] != extended[slot]
                                      for j, slot in dup_checks):
                    continue
                counts[3] += 1
                yield extended

    def extend_block(self, graph: Graph, block: List[EncodedBinding],
                     counts: List[int],
                     token: Optional[CancellationToken]
                     ) -> List[EncodedBinding]:
        """Block interval scan: each ``(lo, hi)`` range is one
        contiguous zero-copy view (two binary searches), walked with
        the shared row loop."""
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        out: List[EncodedBinding] = []
        order_index = self.order_index
        range_view = index.range_view_order
        assigns = self.assigns
        dup_checks = self.dup_checks
        scanned = 0
        for binding in block:
            prefix = tuple(binding[value] if is_var else value
                           for is_var, value in self.prefix_spec)
            views = [range_view(order_index, prefix, lo, hi)
                     for lo, hi in self.ranges]
            if any(view is None for view in views):
                out.extend(self.run(graph, binding, counts, token))
                continue
            checks = self.const_checks
            if self.bound_checks:
                checks = checks + [(j, binding[s])
                                   for j, s in self.bound_checks]
            simple = (not checks and not dup_checks and len(assigns) == 1)
            for view in views:
                counts[5] += 1
                if simple:
                    j, free_slot = assigns[0]
                    counts[3] += _emit_values(binding, free_slot,
                                              view[j::3], out, token)
                    continue
                emitted, scanned = _emit_rows(binding, view, checks,
                                              assigns, dup_checks, out,
                                              token, scanned)
                counts[3] += emitted
        return out


class _IntervalMemberScanStep:
    """Member-expansion fallback for an interval atom.

    Executes the atom once per explicit member identifier through the
    backend-generic eight-shape ``match`` — correct on hash indexes
    and ablated columnar layouts, at point-lookup rather than
    range-scan cost.
    """

    __slots__ = ("template", "ranged_position", "members", "bound",
                 "assigns", "dup_checks", "pattern")

    def __init__(self, positions: Sequence[_Position],
                 spec: "IntervalPattern", bound_slots: frozenset):
        template: List[Optional[int]] = [None, None, None]
        bound: List[Tuple[int, int]] = []
        assigns: List[Tuple[int, int]] = []
        dup_checks: List[Tuple[int, int]] = []
        seen: set = set()
        for position, (is_var, value) in enumerate(positions):
            if position == spec.position:
                continue
            if not is_var:
                template[position] = value
            elif value in bound_slots:
                bound.append((position, value))
            elif value in seen:
                dup_checks.append((position, value))
            else:
                seen.add(value)
                assigns.append((position, value))
        self.template = template
        self.ranged_position = spec.position
        self.members = spec.members
        self.bound = bound
        self.assigns = assigns
        self.dup_checks = dup_checks
        self.pattern = spec.pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        args = list(self.template)
        for position, slot in self.bound:
            args[position] = binding[slot]
        ranged = self.ranged_position
        assigns = self.assigns
        dup_checks = self.dup_checks
        match = graph.index.match
        scanned = 0
        for member in self.members:
            counts[6] += 1
            args[ranged] = member
            for triple in match(args[0], args[1], args[2]):
                scanned += 1
                if token is not None and scanned & 0xFF == 0:
                    token.raise_if_cancelled()
                extended = binding[:]
                for position, slot in assigns:
                    extended[slot] = triple[position]
                if dup_checks and any(triple[position] != extended[slot]
                                      for position, slot in dup_checks):
                    continue
                counts[3] += 1
                yield extended

    # point lookups per explicit member: nothing to slice
    extend_block = _default_extend_block


class _AlternativesStep:
    """Union of alternative sub-steps for one atom.

    A type atom under the interval encoding can need up to three
    branches (subclass interval, effective-domain interval,
    effective-range interval); each branch extends the binding
    independently and the downstream steps see their concatenation.
    Cross-branch duplicates are legal — the reformulation result set
    is DISTINCT by construction.
    """

    __slots__ = ("steps", "pattern")

    def __init__(self, steps: Sequence[object], pattern: TriplePattern):
        self.steps = tuple(steps)
        self.pattern = pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        for step in self.steps:
            yield from step.run(graph, binding, counts,  # type: ignore[attr-defined]
                                token)

    def extend_block(self, graph: Graph, block: List[EncodedBinding],
                     counts: List[int],
                     token: Optional[CancellationToken]
                     ) -> List[EncodedBinding]:
        # per binding so branch outputs interleave exactly as the
        # scalar union does (binding-major, branch-minor)
        out: List[EncodedBinding] = []
        for binding in block:
            single = [binding]
            for step in self.steps:
                out.extend(step.extend_block(  # type: ignore[attr-defined]
                    graph, single, counts, token))
        return out


def leapfrog(seeks: Sequence[Callable[[int], Optional[int]]],
             counts: Optional[List[int]] = None,
             token: Optional[CancellationToken] = None) -> Iterator[int]:
    """Values common to every sorted cursor (identifiers are >= 0).

    Each ``seeks[i](v)`` returns the cursor's smallest value ``>= v``
    or ``None`` when exhausted.  Classic leapfrog: chase the current
    maximum around the cursor ring until all agree.  ``token`` is
    polled every 256 seeks: sparse intersections can seek for a long
    time between emitted values.
    """
    if counts is None:
        counts = [0, 0, 0, 0, 0]
    k = len(seeks)
    if k == 0:
        # the intersection of no cursors is empty (not "everything"):
        # a group can lose every cursor to unsatisfiable prefixes
        return
    counts[2] += 1
    current = seeks[0](0)
    counts[4] += 1
    if current is None:
        return
    if k == 1:
        while current is not None:
            if token is not None and counts[4] & 0xFF == 0:
                token.raise_if_cancelled()
            yield current
            current = seeks[0](current + 1)
            counts[4] += 1
        return
    cursor = 0
    agreeing = 1
    while True:
        if token is not None and counts[4] & 0xFF == 0:
            token.raise_if_cancelled()
        cursor = (cursor + 1) % k
        value = seeks[cursor](current)
        counts[4] += 1
        if value is None:
            return
        if value == current:
            agreeing += 1
            if agreeing == k:
                yield current
                value = seeks[cursor](current + 1)
                counts[4] += 1
                if value is None:
                    return
                current = value
                agreeing = 1
        else:
            current = value
            agreeing = 1


_Step = Union[_ScanStep, _SortedScanStep, _IntersectStep,
              _IntervalSortedScanStep, _IntervalMemberScanStep,
              _AlternativesStep]


class BGPPlan:
    """A BGP compiled to identifier space: slots, steps, execution."""

    __slots__ = ("graph", "steps", "slot_of", "nslots", "empty")

    def __init__(self, graph: Graph, steps: Sequence[_Step],
                 slot_of: Dict[Variable, int], empty: bool):
        self.graph = graph
        self.steps = tuple(steps)
        self.slot_of = slot_of
        self.nslots = len(slot_of)
        self.empty = empty

    def scan_steps(self) -> int:
        return sum(1 for s in self.steps
                   if not isinstance(s, _IntersectStep))

    def intersect_steps(self) -> int:
        return sum(1 for s in self.steps if isinstance(s, _IntersectStep))

    def run(self, initial: Optional[EncodedBinding] = None
            ) -> Iterator[EncodedBinding]:
        """Stream every satisfying encoded binding.

        ``initial`` pre-binds slots; it is not mutated.
        """
        start = list(initial) if initial is not None else [None] * self.nslots
        return self.run_seeds((start,))

    def run_seeds(self, seeds: Iterable[EncodedBinding]
                  ) -> Iterator[EncodedBinding]:
        """Stream the satisfying extensions of every seed binding.

        The set-at-a-time entry point: the semi-naive engines push a
        whole delta relation of pivot bindings through the plan in one
        call, so per-execution bookkeeping (metrics flush, closure
        setup) is paid once per batch rather than once per seed.
        Seeds are never mutated (every step extends by copy).

        Kernel-mode dependent plumbing, mode-invariant results: under
        :func:`repro.kernels.vectorized` the plan executes block-at-a-
        time; ``scalar`` keeps the per-binding generator descent.  Both
        produce the same bindings in the same order.
        """
        if self.empty:
            return
        # [scans, intersections, leapfrogs, bindings, seeks,
        #  interval range scans, interval member expansions]
        counts = [0, 0, 0, 0, 0, 0, 0]
        token = current_token()  # serving deadline, if one is armed
        try:
            if not self.steps:
                yield from seeds
                return
            if kernels.vectorized():
                emitted = 0
                for block in self._drive_blocks(seeds, counts, token):
                    if token is None:
                        yield from block
                        continue
                    # consumers can cancel between pulls: poll while
                    # draining the buffered block, same stride as the
                    # scalar descent
                    for binding in block:
                        emitted += 1
                        if emitted & 0x3F == 0:
                            token.raise_if_cancelled()
                        yield binding
                return
            yield from self._descend_scalar(seeds, counts, token)
        finally:
            self._flush_counts(counts)

    def run_blocks(self, seeds: Iterable[EncodedBinding]
                   ) -> Iterator[List[EncodedBinding]]:
        """Stream the satisfying extensions as lists — the block entry
        point for set-at-a-time consumers (the batch saturation
        engine's head instantiation).  Concatenating the blocks yields
        exactly the ``run_seeds`` stream.
        """
        if self.empty:
            return
        counts = [0, 0, 0, 0, 0, 0, 0]
        token = current_token()
        try:
            if not self.steps:
                passthrough = list(seeds)
                if passthrough:
                    yield passthrough
                return
            if kernels.vectorized():
                yield from self._drive_blocks(seeds, counts, token)
                return
            scalar = self._descend_scalar(seeds, counts, token)
            while True:  # sc: allow(SC303): the scalar stream polls inside
                block = list(islice(scalar, _BLOCK_CAP))
                if not block:
                    return
                yield block
        finally:
            self._flush_counts(counts)

    def _descend_scalar(self, seeds: Iterable[EncodedBinding],
                        counts: List[int],
                        token: Optional[CancellationToken]
                        ) -> Iterator[EncodedBinding]:
        """The per-binding reference execution (kernel mode ``scalar``)."""
        graph = self.graph
        steps = self.steps
        depth = len(steps)

        def descend(at: int, binding: EncodedBinding
                    ) -> Iterator[EncodedBinding]:
            if at == depth:
                yield binding
                return
            for extended in steps[at].run(graph, binding, counts, token):
                if token is not None and counts[3] & 0x3F == 0:
                    token.raise_if_cancelled()
                yield from descend(at + 1, extended)

        first = steps[0]
        if depth == 1:
            # flat loop: no recursion for the 1-step plans the
            # rule engine compiles for 2-atom rule bodies
            for seed in seeds:
                if token is not None:
                    token.raise_if_cancelled()
                yield from first.run(graph, seed, counts, token)
            return
        for seed in seeds:
            for extended in first.run(graph, seed, counts, token):
                yield from descend(1, extended)

    def _drive_blocks(self, seeds: Iterable[EncodedBinding],
                      counts: List[int],
                      token: Optional[CancellationToken]
                      ) -> Iterator[List[EncodedBinding]]:
        """Block-at-a-time execution: push binding lists level by level.

        Finishing each level before the next preserves the scalar DFS
        output order (steps emit extensions binding-major, value-minor);
        oversized intermediate blocks re-chunk so memory stays bounded
        and LIMIT-style consumers never overpay by more than a chunk.
        """
        graph = self.graph
        steps = self.steps
        depth = len(steps)

        def advance(at: int, block: List[EncodedBinding]
                    ) -> Iterator[List[EncodedBinding]]:
            # each extend_block polls through its own scan/seek loops
            while at < depth and block:  # sc: allow(SC303): depth-bounded
                block = steps[at].extend_block(  # type: ignore[attr-defined]
                    graph, block, counts, token)
                at += 1
                if at < depth and len(block) > _BLOCK_CAP:
                    for start in range(0, len(block), _BLOCK_CAP):
                        yield from advance(at,
                                           block[start:start + _BLOCK_CAP])
                    return
            if block:
                yield block

        iterator = iter(seeds)
        while True:  # sc: allow(SC303): polls once per seed chunk below
            if token is not None:
                token.raise_if_cancelled()
            chunk = list(islice(iterator, _BLOCK_SEEDS))
            if not chunk:
                return
            yield from advance(0, chunk)

    def _flush_counts(self, counts: List[int]) -> None:
        metrics = get_metrics()
        metrics.counter("joins.scan_steps").inc(counts[0])
        metrics.counter("joins.intersect_steps").inc(counts[1])
        metrics.counter("joins.leapfrog_seeks").inc(counts[4])
        metrics.counter("joins.intermediate_bindings").inc(counts[3])
        if counts[5]:
            metrics.counter("encoding.range_scans").inc(counts[5])
        if counts[6]:
            metrics.counter("encoding.member_scans").inc(counts[6])


def _compile_positions(pattern: TriplePattern, slot_of: Dict[Variable, int],
                       lookup: Callable[[Term], Optional[int]]
                       ) -> Optional[Tuple[_Position, _Position, _Position]]:
    """Encode one atom; None when a constant is unknown (no matches)."""
    compiled: List[_Position] = []
    for term in pattern:
        if isinstance(term, Variable):
            slot = slot_of.setdefault(term, len(slot_of))
            compiled.append((True, slot))
        else:
            identifier = lookup(term)
            if identifier is None:
                return None
            compiled.append((False, identifier))
    return (compiled[0], compiled[1], compiled[2])


def _intersect_cursor(index: ColumnarTripleIndex,
                      positions: Sequence[_Position],
                      bound_slots: frozenset, slot: int
                      ) -> Optional[Tuple[int, Tuple[_Position, _Position]]]:
    """Reduce an atom to a sorted cursor over ``slot``'s candidates,
    or None when the atom is not order-compatible."""
    free_positions = [i for i, (is_var, value) in enumerate(positions)
                      if is_var and value == slot]
    if len(free_positions) != 1:
        return None  # repeated free variable: scan-and-filter instead
    free = free_positions[0]
    bound_positions = [i for i in range(3) if i != free]
    order_index = index.order_for(bound_positions, free)
    if order_index is None:
        return None  # ablated layout: no run has the needed prefix
    permutation = index.permutation(order_index)
    prefix_spec = (positions[permutation[0]], positions[permutation[1]])
    return (order_index, prefix_spec)


def _free_slots(positions: Sequence[_Position],
                bound_slots: frozenset) -> frozenset:
    return frozenset(value for is_var, value in positions
                     if is_var and value not in bound_slots)


def compile_bgp(graph: Graph, patterns: Sequence[TriplePattern],
                optimize: bool = True,
                pre_bound: Sequence[Variable] = ()) -> BGPPlan:
    """Compile ``patterns`` into an executable identifier-space plan.

    ``pre_bound`` names variables the caller will bind in the initial
    binding (their slots come first, in the given order).  Join order
    comes from the optimizer's statistics; on columnar backends,
    order-compatible groups become merge/leapfrog intersection steps.
    """
    slot_of: Dict[Variable, int] = {}
    for variable in pre_bound:
        slot_of.setdefault(variable, len(slot_of))
    lookup = graph.dictionary.lookup

    if optimize and len(patterns) > 1:
        order = order_patterns(graph, patterns, pre_bound=pre_bound)
    else:
        order = list(range(len(patterns)))

    compiled: List[Tuple[Tuple[_Position, ...], TriplePattern]] = []
    empty = False
    for i in order:
        positions = _compile_positions(patterns[i], slot_of, lookup)
        if positions is None:
            empty = True
            break
        compiled.append((positions, patterns[i]))

    steps: List[_Step] = []
    if not empty:
        index = graph.index
        columnar = isinstance(index, ColumnarTripleIndex)
        bound: frozenset = frozenset(slot_of[v] for v in pre_bound)
        queue = list(compiled)
        # compile-time work list: each round pops one atom
        while queue:  # sc: allow(SC303): drains, one pop per round
            positions, pattern = queue.pop(0)
            free = _free_slots(positions, bound)
            if columnar and len(free) == 1:
                (slot,) = free
                first = _intersect_cursor(index, positions, bound, slot)
                if first is not None:
                    cursors = [first]
                    group_patterns = [pattern]
                    rest: List[Tuple[Tuple[_Position, ...], TriplePattern]] = []
                    for other_positions, other_pattern in queue:
                        cursor = None
                        if _free_slots(other_positions, bound) == free:
                            cursor = _intersect_cursor(
                                index, other_positions, bound, slot)
                        if cursor is not None:
                            cursors.append(cursor)
                            group_patterns.append(other_pattern)
                        else:
                            rest.append((other_positions, other_pattern))
                    if len(cursors) >= 2:
                        steps.append(_IntersectStep(slot, cursors,
                                                    group_patterns))
                        bound = bound | free
                        queue = rest
                        continue
            if columnar:
                steps.append(_SortedScanStep(index, positions, bound,
                                             pattern))
            else:
                steps.append(_ScanStep(positions, bound, pattern))
            bound = bound | free
    return BGPPlan(graph, steps, slot_of, empty)


_CompiledSpec = Tuple[str, Tuple[_Position, _Position, _Position], object]


def _compile_interval_positions(spec: IntervalPattern,
                                slot_of: Dict[Variable, int],
                                lookup: Callable[[Term], Optional[int]]
                                ) -> Optional[_CompiledSpec]:
    """Encode an interval atom's skeleton; None when unsatisfiable."""
    if not spec.members:
        return None
    compiled: List[_Position] = []
    for position, term in enumerate(spec.pattern):
        if position == spec.position:
            compiled.append((False, -1))  # placeholder: never read
        elif isinstance(term, Variable):
            compiled.append((True, slot_of.setdefault(term, len(slot_of))))
        else:
            identifier = lookup(term)
            if identifier is None:
                return None
            compiled.append((False, identifier))
    return ("interval", (compiled[0], compiled[1], compiled[2]), spec)


def _spec_step(index, columnar: bool, compiled: _CompiledSpec,
               bound: frozenset) -> _Step:
    kind, positions, spec = compiled
    if kind == "plain":
        assert isinstance(spec, TriplePattern)
        return (_SortedScanStep(index, positions, bound, spec)
                if columnar else _ScanStep(positions, bound, spec))
    assert isinstance(spec, IntervalPattern)
    if columnar:
        step = _IntervalSortedScanStep.try_build(index, positions, spec,
                                                 bound)
        if step is not None:
            return step
    return _IntervalMemberScanStep(positions, spec, bound)


def compile_mixed_bgp(graph, groups: Sequence[
        Tuple[TriplePattern, Sequence[Union[TriplePattern, IntervalPattern]]]],
        optimize: bool = True) -> BGPPlan:
    """Compile a BGP whose atoms may carry interval-encoded specs.

    ``groups`` pairs each original atom (the *representative*, used
    for join ordering and slot naming) with the specs produced by
    :func:`repro.reasoning.encoding.encoded_atom_specs` — plain
    patterns and/or :class:`IntervalPattern` atoms whose matches union
    to the atom's reformulation.  Single plain specs compile exactly as
    in :func:`compile_bgp`, including merge/leapfrog intersection
    grouping; interval specs become range-scan steps (member-expansion
    on layouts without a fitting run); multi-spec atoms become a union
    step.  Only variables of the representative count as bound
    downstream — fresh variables inside one branch never escape it.

    ``graph`` is anything with the read surface of
    :class:`~repro.rdf.graph.Graph` (in particular the encoded view).
    """
    slot_of: Dict[Variable, int] = {}
    lookup = graph.dictionary.lookup
    reps = [rep for rep, __ in groups]
    if optimize and len(groups) > 1:
        order = order_patterns(graph, reps)
    else:
        order = list(range(len(groups)))

    index = graph.index
    columnar = isinstance(index, ColumnarTripleIndex)
    queue: List[Tuple[frozenset, TriplePattern, List[_CompiledSpec]]] = []
    empty = False
    for i in order:
        rep, specs = groups[i]
        # allocate the representative's slots first so every branch
        # shares them; branch-local fresh variables come after
        rep_slots = frozenset(
            slot_of.setdefault(term, len(slot_of))
            for term in rep if isinstance(term, Variable))
        compiled_specs: List[_CompiledSpec] = []
        for spec in specs:
            if isinstance(spec, IntervalPattern):
                compiled = _compile_interval_positions(spec, slot_of, lookup)
            else:
                positions = _compile_positions(spec, slot_of, lookup)
                compiled = (("plain", positions, spec)
                            if positions is not None else None)
            if compiled is not None:
                compiled_specs.append(compiled)
        if not compiled_specs:
            empty = True
            break
        queue.append((rep_slots, rep, compiled_specs))

    steps: List[_Step] = []
    if not empty:
        bound: frozenset = frozenset()
        work = list(queue)
        # compile-time work list: each round pops one atom
        while work:  # sc: allow(SC303): drains, one pop per round
            rep_slots, rep, compiled_specs = work.pop(0)
            single_plain = (len(compiled_specs) == 1
                            and compiled_specs[0][0] == "plain")
            if columnar and single_plain:
                positions = compiled_specs[0][1]
                free = _free_slots(positions, bound)
                if len(free) == 1:
                    (slot,) = free
                    first = _intersect_cursor(index, positions, bound, slot)
                    if first is not None:
                        cursors = [first]
                        group_patterns = [rep]
                        rest: List[Tuple[frozenset, TriplePattern,
                                         List[_CompiledSpec]]] = []
                        for other in work:
                            cursor = None
                            if (len(other[2]) == 1
                                    and other[2][0][0] == "plain"
                                    and _free_slots(other[2][0][1],
                                                    bound) == free):
                                cursor = _intersect_cursor(
                                    index, other[2][0][1], bound, slot)
                            if cursor is not None:
                                cursors.append(cursor)
                                group_patterns.append(other[1])
                            else:
                                rest.append(other)
                        if len(cursors) >= 2:
                            steps.append(_IntersectStep(slot, cursors,
                                                        group_patterns))
                            bound = bound | free
                            work = rest
                            continue
            branch_steps = [_spec_step(index, columnar, compiled, bound)
                            for compiled in compiled_specs]
            steps.append(branch_steps[0] if len(branch_steps) == 1
                         else _AlternativesStep(branch_steps, rep))
            bound = bound | rep_slots
    return BGPPlan(graph, steps, slot_of, empty)


# ----------------------------------------------------------------------
# decoded front-ends
# ----------------------------------------------------------------------

def iter_bindings(graph: Graph, patterns: Sequence[TriplePattern],
                  optimize: bool = True) -> Iterator[Substitution]:
    """Decoded substitutions for every solution of the BGP (the
    columnar counterpart of the evaluator's binding stream)."""
    plan = compile_bgp(graph, patterns, optimize)
    decode = graph.dictionary.decode
    variables = list(plan.slot_of.items())
    for binding in plan.run():
        yield {variable: decode(binding[slot])
               for variable, slot in variables
               if binding[slot] is not None}


def _compile_projection(projection: Sequence[Tuple[Optional[int],
                                                   Optional[Term]]],
                        table: Sequence[Term], query: BGPQuery
                        ) -> Callable[[EncodedBinding], Tuple[Term, ...]]:
    """A row projector for the block pipeline.

    Slot-only projections (the common SELECT shape: every
    distinguished variable appears in the patterns, no presets) get a
    closed-over fast form indexing the decode table directly; anything
    with presets or potentially-unbound variables keeps the general
    per-position loop with the same diagnostics as the scalar path.
    """
    if all(slot is not None and constant is None
           for slot, constant in projection):
        slots = tuple(slot for slot, __ in projection)
        if len(slots) == 1:
            (s0,) = slots
            return lambda binding: (table[binding[s0]],)
        if len(slots) == 2:
            s0, s1 = slots
            return lambda binding: (table[binding[s0]], table[binding[s1]])
        return lambda binding: tuple(table[binding[s]] for s in slots)

    def project(binding: EncodedBinding) -> Tuple[Term, ...]:
        row: List[Term] = []
        for slot, constant in projection:
            value = binding[slot] if slot is not None else None
            if value is not None:
                row.append(table[value])
            elif constant is not None:
                row.append(constant)
            else:
                raise ValueError(
                    f"unbound distinguished variable in "
                    f"{query.to_sparql()!r}")
        return tuple(row)

    return project


def evaluate_columnar(graph: Graph, query: BGPQuery,
                      optimize: bool = True) -> ResultSet:
    """Evaluate a BGP query through the set-at-a-time pipeline.

    Semantics are identical to :func:`repro.sparql.evaluator.evaluate`
    (projection, preset fallback, DISTINCT, LIMIT); only the final
    projected rows are decoded.
    """
    with span("joins.evaluate", atoms=len(query.patterns)) as sp:
        plan = compile_bgp(graph, query.patterns, optimize)
        sp.set(scan_steps=plan.scan_steps(),
               intersect_steps=plan.intersect_steps())
        results = ResultSet(query.distinguished, distinct=query.distinct)
        decode = graph.dictionary.decode
        preset = query.preset
        # per distinguished variable: its slot, or its preset constant,
        # or None (diagnosed on the first produced row, as in evaluate)
        projection: List[Tuple[Optional[int], Optional[Term]]] = []
        for variable in query.distinguished:
            projection.append((plan.slot_of.get(variable),
                               preset.get(variable)))
        limit = query.limit
        if kernels.vectorized():
            # block pipeline: project each binding block with the
            # decode table indexed directly and land it through one
            # bulk extend — row materialization is part of the
            # vectorized path, not a per-row tail on top of it
            table = graph.dictionary.decode_table()
            project = _compile_projection(projection, table, query)
            start: EncodedBinding = [None] * plan.nslots
            if results.distinct and limit is None:
                # no row limit: stream every block through one
                # C-level order-preserving dedup instead of testing
                # membership row by row
                results.extend_rows_dedup(chain.from_iterable(
                    map(project, block)
                    for block in plan.run_blocks((start,))))
            elif results.distinct:
                for block in plan.run_blocks((start,)):
                    if results.extend_rows(map(project, block), limit):
                        break
            else:
                # without DISTINCT every produced row is kept; skip
                # per-row set maintenance — the set view (answer-set
                # comparisons) rebuilds lazily if ever needed
                for block in plan.run_blocks((start,)):
                    if results.extend_unique_rows(map(project, block),
                                                  limit):
                        break
        else:
            for binding in plan.run():
                row: List[Term] = []
                for slot, constant in projection:
                    value = binding[slot] if slot is not None else None
                    if value is not None:
                        row.append(decode(value))
                    elif constant is not None:
                        row.append(constant)
                    else:
                        raise ValueError(
                            f"unbound distinguished variable in "
                            f"{query.to_sparql()!r}")
                results.add(tuple(row))
                if limit is not None and len(results) >= limit:
                    break
        sp.set(answers=len(results))
    return results
