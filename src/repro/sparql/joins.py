"""Set-at-a-time join operators over encoded triple indexes.

The classic evaluator (:mod:`repro.sparql.evaluator`) is an
object-at-a-time index nested-loop join: every intermediate row costs
a decoded :class:`~repro.rdf.triples.Triple`, a pattern match and two
dictionary copies.  This module compiles a BGP once into a *plan over
identifier space* — variables become integer slots, constants become
dictionary identifiers — and executes it with three operators:

* **scan** — an index range lookup extending the current binding; the
  universal fallback, correct on every backend and index layout;
* **merge intersection** — two patterns whose only free variable is
  the same ``?v`` and whose bound positions form a sorted-run prefix
  are answered by merging the two sorted suffix runs;
* **leapfrog intersection** — the k-ary generalization (leapfrog
  triejoin's unary core): k sorted cursors gallop to their next
  common value via binary-search seeks.

Operator selection uses the existing optimizer statistics:
:func:`~repro.sparql.optimizer.order_patterns` fixes the join order,
then every maximal group of order-compatible single-free-variable
patterns becomes one intersection step.  Patterns that are not
order-compatible (ablated index layouts, repeated variables) fall
back to scans, so plans exist for every query on every layout.

Only terms leaving the pipeline are decoded; intermediate bindings
are flat integer lists.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..cancellation import CancellationToken, current_token
from ..obs import get_metrics, span
from ..rdf.columnar import ColumnarTripleIndex
from ..rdf.graph import Graph
from ..rdf.terms import Term, Variable
from ..rdf.triples import Substitution, TriplePattern
from .ast import BGPQuery
from .bindings import ResultSet
from .optimizer import order_patterns

__all__ = ["BGPPlan", "IntervalPattern", "compile_bgp", "compile_mixed_bgp",
           "iter_bindings", "evaluate_columnar", "leapfrog"]

#: An encoded binding: one integer (or None) per variable slot.
EncodedBinding = List[Optional[int]]

#: Compiled atom position: (is_variable, identifier-or-slot).
_Position = Tuple[bool, int]


class IntervalPattern:
    """An atom whose ``position`` matches any identifier in ``ranges``.

    The semantic interval encoding (:mod:`repro.reasoning.encoding`)
    collapses a reformulation's per-atom union — "this class or any of
    its subclasses", "any property with this effective domain" — into
    identifier ranges at a single position.  ``pattern`` is the atom's
    skeleton: its other two positions compile as usual (variables,
    constants, repeats); the term at ``position`` is only advisory (the
    original class/property constant, kept for EXPLAIN output).
    ``members`` lists the same identifiers explicitly — the fallback
    set used when no sorted run can serve the range (hash backends,
    ablated layouts).
    """

    __slots__ = ("pattern", "position", "ranges", "members")

    def __init__(self, pattern: TriplePattern, position: int,
                 ranges: Tuple[Tuple[int, int], ...],
                 members: Tuple[int, ...]):
        self.pattern = pattern
        self.position = position
        self.ranges = ranges
        self.members = members

    def __repr__(self) -> str:
        return (f"IntervalPattern({self.pattern!r}, position="
                f"{self.position}, ranges={self.ranges!r})")


class _ScanStep:
    """Index-nested-loop step: range-scan one atom, extend the binding.

    Backend-generic — drives the index's eight-shape ``match``.
    """

    __slots__ = ("template", "bound", "assigns", "dup_checks", "pattern")

    def __init__(self, positions: Sequence[_Position], bound_slots: frozenset,
                 pattern: TriplePattern):
        template: List[Optional[int]] = [None, None, None]
        bound: List[Tuple[int, int]] = []       # (position, slot)
        assigns: List[Tuple[int, int]] = []     # (position, slot)
        dup_checks: List[Tuple[int, int]] = []  # (position, slot)
        seen: set = set()
        for position, (is_var, value) in enumerate(positions):
            if not is_var:
                template[position] = value
            elif value in bound_slots:
                bound.append((position, value))
            elif value in seen:
                dup_checks.append((position, value))
            else:
                seen.add(value)
                assigns.append((position, value))
        self.template = template
        self.bound = bound
        self.assigns = assigns
        self.dup_checks = dup_checks
        self.pattern = pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        args = list(self.template)
        for position, slot in self.bound:
            args[position] = binding[slot]
        counts[0] += 1
        assigns = self.assigns
        dup_checks = self.dup_checks
        scanned = 0
        for triple in graph.index.match(args[0], args[1], args[2]):
            scanned += 1
            if token is not None and scanned & 0xFF == 0:
                token.raise_if_cancelled()
            extended = binding[:]
            for position, slot in assigns:
                extended[slot] = triple[position]
            if dup_checks and any(triple[position] != extended[slot]
                                  for position, slot in dup_checks):
                continue
            counts[3] += 1
            yield extended


class _SortedScanStep:
    """Range-scan step specialized to one sorted run.

    On columnar graphs the scan order depends only on which positions
    are bound — known at compile time — so the order choice, the
    permutation and the residual checks are all resolved here once,
    and the inner loop works directly on permuted triples from the
    run: one binary-searched range per execution, no per-lookup order
    selection and no back-permutation of components nobody reads.
    """

    __slots__ = ("order_index", "prefix_spec", "const_checks",
                 "bound_checks", "assigns", "dup_checks", "value_slot",
                 "pattern")

    def __init__(self, index: ColumnarTripleIndex,
                 positions: Sequence[_Position], bound_slots: frozenset,
                 pattern: TriplePattern):
        bound_positions = frozenset(
            i for i, (is_var, value) in enumerate(positions)
            if not is_var or value in bound_slots)
        order_index, prefix_len = index.best_order(bound_positions)
        permutation = index.permutation(order_index)
        self.order_index = order_index
        # prefix components in permuted order: constants or bound slots
        self.prefix_spec = tuple(positions[permutation[j]]
                                 for j in range(prefix_len))
        const_checks: List[Tuple[int, int]] = []  # (permuted pos, id)
        bound_checks: List[Tuple[int, int]] = []  # (permuted pos, slot)
        assigns: List[Tuple[int, int]] = []       # (permuted pos, slot)
        dup_checks: List[Tuple[int, int]] = []    # (permuted pos, slot)
        seen: set = set()
        for j in range(prefix_len, 3):
            is_var, value = positions[permutation[j]]
            if not is_var:
                const_checks.append((j, value))
            elif value in bound_slots:
                bound_checks.append((j, value))
            elif value in seen:
                dup_checks.append((j, value))
            else:
                seen.add(value)
                assigns.append((j, value))
        self.const_checks = const_checks
        self.bound_checks = bound_checks
        self.assigns = assigns
        self.dup_checks = dup_checks
        # the dominant rule-engine shape — two bound prefix positions,
        # one free suffix value — runs through the index's value scan
        self.value_slot = (assigns[0][1]
                           if (prefix_len == 2 and len(assigns) == 1
                               and not const_checks and not bound_checks
                               and not dup_checks)
                           else None)
        self.pattern = pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        counts[0] += 1
        prefix = tuple(binding[value] if is_var else value
                       for is_var, value in self.prefix_spec)
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        slot = self.value_slot
        if slot is not None:
            bindings = 0
            for value in index.values_order(self.order_index,
                                            prefix[0], prefix[1]):
                if token is not None and bindings & 0xFF == 0:
                    token.raise_if_cancelled()
                extended = binding[:]
                extended[slot] = value
                bindings += 1
                yield extended
            counts[3] += bindings
            return
        checks = self.const_checks
        if self.bound_checks:
            checks = checks + [(j, binding[slot])
                               for j, slot in self.bound_checks]
        assigns = self.assigns
        dup_checks = self.dup_checks
        scanned = 0
        for t in index.scan_order(self.order_index, prefix):
            scanned += 1
            if token is not None and scanned & 0xFF == 0:
                token.raise_if_cancelled()
            if checks and any(t[j] != value for j, value in checks):
                continue
            extended = binding[:]
            for j, slot in assigns:
                extended[slot] = t[j]
            if dup_checks and any(t[j] != extended[slot]
                                  for j, slot in dup_checks):
                continue
            counts[3] += 1
            yield extended


class _IntersectStep:
    """Merge (k=2) / leapfrog (k>2) intersection of sorted suffix runs.

    Each cursor is one atom reduced to a sorted stream of candidate
    values for the shared variable; the leapfrog loop emits exactly
    the values on which all streams agree.
    """

    __slots__ = ("slot", "cursors", "patterns")

    def __init__(self, slot: int,
                 cursors: Sequence[Tuple[int, Tuple[_Position, _Position]]],
                 patterns: Sequence[TriplePattern]):
        self.slot = slot
        self.cursors = tuple(cursors)
        self.patterns = tuple(patterns)

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        counts[1] += 1
        seeks: List[Callable[[int], Optional[int]]] = []
        for order_index, prefix_spec in self.cursors:
            (a_var, a_val), (b_var, b_val) = prefix_spec
            prefix = (binding[a_val] if a_var else a_val,
                      binding[b_val] if b_var else b_val)
            runs_seek = index.seek_in
            seeks.append(
                lambda v, oi=order_index, pre=prefix: runs_seek(oi, pre, v))
        slot = self.slot
        for value in leapfrog(seeks, counts, token):
            extended = binding[:]
            extended[slot] = value
            counts[3] += 1
            yield extended


class _IntervalSortedScanStep:
    """Range-scan step for one interval atom over a sorted run.

    The bound positions form the run prefix; the interval position
    comes right after it, so every ``(lo, hi)`` range is one binary-
    searched contiguous walk (``scan_order_between``).  Built by
    :meth:`try_build` only when the layout has such a run; otherwise
    the member-expansion fallback executes the atom.
    """

    __slots__ = ("order_index", "prefix_spec", "ranges", "const_checks",
                 "bound_checks", "assigns", "dup_checks", "pattern")

    def __init__(self, order_index: int, prefix_spec, ranges, const_checks,
                 bound_checks, assigns, dup_checks,
                 pattern: TriplePattern):
        self.order_index = order_index
        self.prefix_spec = prefix_spec
        self.ranges = ranges
        self.const_checks = const_checks
        self.bound_checks = bound_checks
        self.assigns = assigns
        self.dup_checks = dup_checks
        self.pattern = pattern

    @classmethod
    def try_build(cls, index: ColumnarTripleIndex,
                  positions: Sequence[_Position], spec: "IntervalPattern",
                  bound_slots: frozenset
                  ) -> Optional["_IntervalSortedScanStep"]:
        ranged = spec.position
        bound_positions = [
            i for i, (is_var, value) in enumerate(positions)
            if i != ranged and (not is_var or value in bound_slots)]
        order_index = index.order_for(bound_positions, ranged)
        if order_index is None:
            return None
        permutation = index.permutation(order_index)
        width = len(bound_positions)
        prefix_spec = tuple(positions[permutation[j]] for j in range(width))
        const_checks: List[Tuple[int, int]] = []  # (permuted pos, id)
        bound_checks: List[Tuple[int, int]] = []  # (permuted pos, slot)
        assigns: List[Tuple[int, int]] = []       # (permuted pos, slot)
        dup_checks: List[Tuple[int, int]] = []    # (permuted pos, slot)
        seen: set = set()
        for j in range(width + 1, 3):
            is_var, value = positions[permutation[j]]
            if not is_var:
                const_checks.append((j, value))
            elif value in bound_slots:
                bound_checks.append((j, value))
            elif value in seen:
                dup_checks.append((j, value))
            else:
                seen.add(value)
                assigns.append((j, value))
        return cls(order_index, prefix_spec, spec.ranges, const_checks,
                   bound_checks, assigns, dup_checks, spec.pattern)

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        index = graph.index
        assert isinstance(index, ColumnarTripleIndex)
        prefix = tuple(binding[value] if is_var else value
                       for is_var, value in self.prefix_spec)
        checks = self.const_checks
        if self.bound_checks:
            checks = checks + [(j, binding[slot])
                               for j, slot in self.bound_checks]
        assigns = self.assigns
        dup_checks = self.dup_checks
        scan_between = index.scan_order_between
        order_index = self.order_index
        scanned = 0
        for lo, hi in self.ranges:
            counts[5] += 1
            for t in scan_between(order_index, prefix, lo, hi):
                scanned += 1
                if token is not None and scanned & 0xFF == 0:
                    token.raise_if_cancelled()
                if checks and any(t[j] != value for j, value in checks):
                    continue
                extended = binding[:]
                for j, slot in assigns:
                    extended[slot] = t[j]
                if dup_checks and any(t[j] != extended[slot]
                                      for j, slot in dup_checks):
                    continue
                counts[3] += 1
                yield extended


class _IntervalMemberScanStep:
    """Member-expansion fallback for an interval atom.

    Executes the atom once per explicit member identifier through the
    backend-generic eight-shape ``match`` — correct on hash indexes
    and ablated columnar layouts, at point-lookup rather than
    range-scan cost.
    """

    __slots__ = ("template", "ranged_position", "members", "bound",
                 "assigns", "dup_checks", "pattern")

    def __init__(self, positions: Sequence[_Position],
                 spec: "IntervalPattern", bound_slots: frozenset):
        template: List[Optional[int]] = [None, None, None]
        bound: List[Tuple[int, int]] = []
        assigns: List[Tuple[int, int]] = []
        dup_checks: List[Tuple[int, int]] = []
        seen: set = set()
        for position, (is_var, value) in enumerate(positions):
            if position == spec.position:
                continue
            if not is_var:
                template[position] = value
            elif value in bound_slots:
                bound.append((position, value))
            elif value in seen:
                dup_checks.append((position, value))
            else:
                seen.add(value)
                assigns.append((position, value))
        self.template = template
        self.ranged_position = spec.position
        self.members = spec.members
        self.bound = bound
        self.assigns = assigns
        self.dup_checks = dup_checks
        self.pattern = spec.pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        args = list(self.template)
        for position, slot in self.bound:
            args[position] = binding[slot]
        ranged = self.ranged_position
        assigns = self.assigns
        dup_checks = self.dup_checks
        match = graph.index.match
        scanned = 0
        for member in self.members:
            counts[6] += 1
            args[ranged] = member
            for triple in match(args[0], args[1], args[2]):
                scanned += 1
                if token is not None and scanned & 0xFF == 0:
                    token.raise_if_cancelled()
                extended = binding[:]
                for position, slot in assigns:
                    extended[slot] = triple[position]
                if dup_checks and any(triple[position] != extended[slot]
                                      for position, slot in dup_checks):
                    continue
                counts[3] += 1
                yield extended


class _AlternativesStep:
    """Union of alternative sub-steps for one atom.

    A type atom under the interval encoding can need up to three
    branches (subclass interval, effective-domain interval,
    effective-range interval); each branch extends the binding
    independently and the downstream steps see their concatenation.
    Cross-branch duplicates are legal — the reformulation result set
    is DISTINCT by construction.
    """

    __slots__ = ("steps", "pattern")

    def __init__(self, steps: Sequence[object], pattern: TriplePattern):
        self.steps = tuple(steps)
        self.pattern = pattern

    def run(self, graph: Graph, binding: EncodedBinding,
            counts: List[int],
            token: Optional[CancellationToken] = None
            ) -> Iterator[EncodedBinding]:
        for step in self.steps:
            yield from step.run(graph, binding, counts,  # type: ignore[attr-defined]
                                token)


def leapfrog(seeks: Sequence[Callable[[int], Optional[int]]],
             counts: Optional[List[int]] = None,
             token: Optional[CancellationToken] = None) -> Iterator[int]:
    """Values common to every sorted cursor (identifiers are >= 0).

    Each ``seeks[i](v)`` returns the cursor's smallest value ``>= v``
    or ``None`` when exhausted.  Classic leapfrog: chase the current
    maximum around the cursor ring until all agree.  ``token`` is
    polled every 256 seeks: sparse intersections can seek for a long
    time between emitted values.
    """
    if counts is None:
        counts = [0, 0, 0, 0, 0]
    k = len(seeks)
    counts[2] += 1
    current = seeks[0](0)
    counts[4] += 1
    if current is None:
        return
    if k == 1:
        while current is not None:
            if token is not None and counts[4] & 0xFF == 0:
                token.raise_if_cancelled()
            yield current
            current = seeks[0](current + 1)
            counts[4] += 1
        return
    cursor = 0
    agreeing = 1
    while True:
        if token is not None and counts[4] & 0xFF == 0:
            token.raise_if_cancelled()
        cursor = (cursor + 1) % k
        value = seeks[cursor](current)
        counts[4] += 1
        if value is None:
            return
        if value == current:
            agreeing += 1
            if agreeing == k:
                yield current
                value = seeks[cursor](current + 1)
                counts[4] += 1
                if value is None:
                    return
                current = value
                agreeing = 1
        else:
            current = value
            agreeing = 1


_Step = Union[_ScanStep, _SortedScanStep, _IntersectStep,
              _IntervalSortedScanStep, _IntervalMemberScanStep,
              _AlternativesStep]


class BGPPlan:
    """A BGP compiled to identifier space: slots, steps, execution."""

    __slots__ = ("graph", "steps", "slot_of", "nslots", "empty")

    def __init__(self, graph: Graph, steps: Sequence[_Step],
                 slot_of: Dict[Variable, int], empty: bool):
        self.graph = graph
        self.steps = tuple(steps)
        self.slot_of = slot_of
        self.nslots = len(slot_of)
        self.empty = empty

    def scan_steps(self) -> int:
        return sum(1 for s in self.steps
                   if not isinstance(s, _IntersectStep))

    def intersect_steps(self) -> int:
        return sum(1 for s in self.steps if isinstance(s, _IntersectStep))

    def run(self, initial: Optional[EncodedBinding] = None
            ) -> Iterator[EncodedBinding]:
        """Stream every satisfying encoded binding.

        ``initial`` pre-binds slots; it is not mutated.
        """
        start = list(initial) if initial is not None else [None] * self.nslots
        return self.run_seeds((start,))

    def run_seeds(self, seeds: Iterable[EncodedBinding]
                  ) -> Iterator[EncodedBinding]:
        """Stream the satisfying extensions of every seed binding.

        The set-at-a-time entry point: the semi-naive engines push a
        whole delta relation of pivot bindings through the plan in one
        call, so per-execution bookkeeping (metrics flush, closure
        setup) is paid once per batch rather than once per seed.
        Seeds are never mutated (every step extends by copy).
        """
        if self.empty:
            return
        # [scans, intersections, leapfrogs, bindings, seeks,
        #  interval range scans, interval member expansions]
        counts = [0, 0, 0, 0, 0, 0, 0]
        graph = self.graph
        steps = self.steps
        depth = len(steps)
        token = current_token()  # serving deadline, if one is armed

        def descend(at: int, binding: EncodedBinding
                    ) -> Iterator[EncodedBinding]:
            if at == depth:
                yield binding
                return
            for extended in steps[at].run(graph, binding, counts, token):
                if token is not None and counts[3] & 0x3F == 0:
                    token.raise_if_cancelled()
                yield from descend(at + 1, extended)

        try:
            if depth == 0:
                yield from seeds
                return
            first = steps[0]
            if depth == 1:
                # flat loop: no recursion for the 1-step plans the
                # rule engine compiles for 2-atom rule bodies
                for seed in seeds:
                    if token is not None:
                        token.raise_if_cancelled()
                    yield from first.run(graph, seed, counts, token)
                return
            for seed in seeds:
                for extended in first.run(graph, seed, counts, token):
                    yield from descend(1, extended)
        finally:
            metrics = get_metrics()
            metrics.counter("joins.scan_steps").inc(counts[0])
            metrics.counter("joins.intersect_steps").inc(counts[1])
            metrics.counter("joins.leapfrog_seeks").inc(counts[4])
            metrics.counter("joins.intermediate_bindings").inc(counts[3])
            if counts[5]:
                metrics.counter("encoding.range_scans").inc(counts[5])
            if counts[6]:
                metrics.counter("encoding.member_scans").inc(counts[6])


def _compile_positions(pattern: TriplePattern, slot_of: Dict[Variable, int],
                       lookup: Callable[[Term], Optional[int]]
                       ) -> Optional[Tuple[_Position, _Position, _Position]]:
    """Encode one atom; None when a constant is unknown (no matches)."""
    compiled: List[_Position] = []
    for term in pattern:
        if isinstance(term, Variable):
            slot = slot_of.setdefault(term, len(slot_of))
            compiled.append((True, slot))
        else:
            identifier = lookup(term)
            if identifier is None:
                return None
            compiled.append((False, identifier))
    return (compiled[0], compiled[1], compiled[2])


def _intersect_cursor(index: ColumnarTripleIndex,
                      positions: Sequence[_Position],
                      bound_slots: frozenset, slot: int
                      ) -> Optional[Tuple[int, Tuple[_Position, _Position]]]:
    """Reduce an atom to a sorted cursor over ``slot``'s candidates,
    or None when the atom is not order-compatible."""
    free_positions = [i for i, (is_var, value) in enumerate(positions)
                      if is_var and value == slot]
    if len(free_positions) != 1:
        return None  # repeated free variable: scan-and-filter instead
    free = free_positions[0]
    bound_positions = [i for i in range(3) if i != free]
    order_index = index.order_for(bound_positions, free)
    if order_index is None:
        return None  # ablated layout: no run has the needed prefix
    permutation = index.permutation(order_index)
    prefix_spec = (positions[permutation[0]], positions[permutation[1]])
    return (order_index, prefix_spec)


def _free_slots(positions: Sequence[_Position],
                bound_slots: frozenset) -> frozenset:
    return frozenset(value for is_var, value in positions
                     if is_var and value not in bound_slots)


def compile_bgp(graph: Graph, patterns: Sequence[TriplePattern],
                optimize: bool = True,
                pre_bound: Sequence[Variable] = ()) -> BGPPlan:
    """Compile ``patterns`` into an executable identifier-space plan.

    ``pre_bound`` names variables the caller will bind in the initial
    binding (their slots come first, in the given order).  Join order
    comes from the optimizer's statistics; on columnar backends,
    order-compatible groups become merge/leapfrog intersection steps.
    """
    slot_of: Dict[Variable, int] = {}
    for variable in pre_bound:
        slot_of.setdefault(variable, len(slot_of))
    lookup = graph.dictionary.lookup

    if optimize and len(patterns) > 1:
        order = order_patterns(graph, patterns, pre_bound=pre_bound)
    else:
        order = list(range(len(patterns)))

    compiled: List[Tuple[Tuple[_Position, ...], TriplePattern]] = []
    empty = False
    for i in order:
        positions = _compile_positions(patterns[i], slot_of, lookup)
        if positions is None:
            empty = True
            break
        compiled.append((positions, patterns[i]))

    steps: List[_Step] = []
    if not empty:
        index = graph.index
        columnar = isinstance(index, ColumnarTripleIndex)
        bound: frozenset = frozenset(slot_of[v] for v in pre_bound)
        queue = list(compiled)
        # compile-time work list: each round pops one atom
        while queue:  # sc: allow(SC303): drains, one pop per round
            positions, pattern = queue.pop(0)
            free = _free_slots(positions, bound)
            if columnar and len(free) == 1:
                (slot,) = free
                first = _intersect_cursor(index, positions, bound, slot)
                if first is not None:
                    cursors = [first]
                    group_patterns = [pattern]
                    rest: List[Tuple[Tuple[_Position, ...], TriplePattern]] = []
                    for other_positions, other_pattern in queue:
                        cursor = None
                        if _free_slots(other_positions, bound) == free:
                            cursor = _intersect_cursor(
                                index, other_positions, bound, slot)
                        if cursor is not None:
                            cursors.append(cursor)
                            group_patterns.append(other_pattern)
                        else:
                            rest.append((other_positions, other_pattern))
                    if len(cursors) >= 2:
                        steps.append(_IntersectStep(slot, cursors,
                                                    group_patterns))
                        bound = bound | free
                        queue = rest
                        continue
            if columnar:
                steps.append(_SortedScanStep(index, positions, bound,
                                             pattern))
            else:
                steps.append(_ScanStep(positions, bound, pattern))
            bound = bound | free
    return BGPPlan(graph, steps, slot_of, empty)


_CompiledSpec = Tuple[str, Tuple[_Position, _Position, _Position], object]


def _compile_interval_positions(spec: IntervalPattern,
                                slot_of: Dict[Variable, int],
                                lookup: Callable[[Term], Optional[int]]
                                ) -> Optional[_CompiledSpec]:
    """Encode an interval atom's skeleton; None when unsatisfiable."""
    if not spec.members:
        return None
    compiled: List[_Position] = []
    for position, term in enumerate(spec.pattern):
        if position == spec.position:
            compiled.append((False, -1))  # placeholder: never read
        elif isinstance(term, Variable):
            compiled.append((True, slot_of.setdefault(term, len(slot_of))))
        else:
            identifier = lookup(term)
            if identifier is None:
                return None
            compiled.append((False, identifier))
    return ("interval", (compiled[0], compiled[1], compiled[2]), spec)


def _spec_step(index, columnar: bool, compiled: _CompiledSpec,
               bound: frozenset) -> _Step:
    kind, positions, spec = compiled
    if kind == "plain":
        assert isinstance(spec, TriplePattern)
        return (_SortedScanStep(index, positions, bound, spec)
                if columnar else _ScanStep(positions, bound, spec))
    assert isinstance(spec, IntervalPattern)
    if columnar:
        step = _IntervalSortedScanStep.try_build(index, positions, spec,
                                                 bound)
        if step is not None:
            return step
    return _IntervalMemberScanStep(positions, spec, bound)


def compile_mixed_bgp(graph, groups: Sequence[
        Tuple[TriplePattern, Sequence[Union[TriplePattern, IntervalPattern]]]],
        optimize: bool = True) -> BGPPlan:
    """Compile a BGP whose atoms may carry interval-encoded specs.

    ``groups`` pairs each original atom (the *representative*, used
    for join ordering and slot naming) with the specs produced by
    :func:`repro.reasoning.encoding.encoded_atom_specs` — plain
    patterns and/or :class:`IntervalPattern` atoms whose matches union
    to the atom's reformulation.  Single plain specs compile exactly as
    in :func:`compile_bgp`, including merge/leapfrog intersection
    grouping; interval specs become range-scan steps (member-expansion
    on layouts without a fitting run); multi-spec atoms become a union
    step.  Only variables of the representative count as bound
    downstream — fresh variables inside one branch never escape it.

    ``graph`` is anything with the read surface of
    :class:`~repro.rdf.graph.Graph` (in particular the encoded view).
    """
    slot_of: Dict[Variable, int] = {}
    lookup = graph.dictionary.lookup
    reps = [rep for rep, __ in groups]
    if optimize and len(groups) > 1:
        order = order_patterns(graph, reps)
    else:
        order = list(range(len(groups)))

    index = graph.index
    columnar = isinstance(index, ColumnarTripleIndex)
    queue: List[Tuple[frozenset, TriplePattern, List[_CompiledSpec]]] = []
    empty = False
    for i in order:
        rep, specs = groups[i]
        # allocate the representative's slots first so every branch
        # shares them; branch-local fresh variables come after
        rep_slots = frozenset(
            slot_of.setdefault(term, len(slot_of))
            for term in rep if isinstance(term, Variable))
        compiled_specs: List[_CompiledSpec] = []
        for spec in specs:
            if isinstance(spec, IntervalPattern):
                compiled = _compile_interval_positions(spec, slot_of, lookup)
            else:
                positions = _compile_positions(spec, slot_of, lookup)
                compiled = (("plain", positions, spec)
                            if positions is not None else None)
            if compiled is not None:
                compiled_specs.append(compiled)
        if not compiled_specs:
            empty = True
            break
        queue.append((rep_slots, rep, compiled_specs))

    steps: List[_Step] = []
    if not empty:
        bound: frozenset = frozenset()
        work = list(queue)
        # compile-time work list: each round pops one atom
        while work:  # sc: allow(SC303): drains, one pop per round
            rep_slots, rep, compiled_specs = work.pop(0)
            single_plain = (len(compiled_specs) == 1
                            and compiled_specs[0][0] == "plain")
            if columnar and single_plain:
                positions = compiled_specs[0][1]
                free = _free_slots(positions, bound)
                if len(free) == 1:
                    (slot,) = free
                    first = _intersect_cursor(index, positions, bound, slot)
                    if first is not None:
                        cursors = [first]
                        group_patterns = [rep]
                        rest: List[Tuple[frozenset, TriplePattern,
                                         List[_CompiledSpec]]] = []
                        for other in work:
                            cursor = None
                            if (len(other[2]) == 1
                                    and other[2][0][0] == "plain"
                                    and _free_slots(other[2][0][1],
                                                    bound) == free):
                                cursor = _intersect_cursor(
                                    index, other[2][0][1], bound, slot)
                            if cursor is not None:
                                cursors.append(cursor)
                                group_patterns.append(other[1])
                            else:
                                rest.append(other)
                        if len(cursors) >= 2:
                            steps.append(_IntersectStep(slot, cursors,
                                                        group_patterns))
                            bound = bound | free
                            work = rest
                            continue
            branch_steps = [_spec_step(index, columnar, compiled, bound)
                            for compiled in compiled_specs]
            steps.append(branch_steps[0] if len(branch_steps) == 1
                         else _AlternativesStep(branch_steps, rep))
            bound = bound | rep_slots
    return BGPPlan(graph, steps, slot_of, empty)


# ----------------------------------------------------------------------
# decoded front-ends
# ----------------------------------------------------------------------

def iter_bindings(graph: Graph, patterns: Sequence[TriplePattern],
                  optimize: bool = True) -> Iterator[Substitution]:
    """Decoded substitutions for every solution of the BGP (the
    columnar counterpart of the evaluator's binding stream)."""
    plan = compile_bgp(graph, patterns, optimize)
    decode = graph.dictionary.decode
    variables = list(plan.slot_of.items())
    for binding in plan.run():
        yield {variable: decode(binding[slot])
               for variable, slot in variables
               if binding[slot] is not None}


def evaluate_columnar(graph: Graph, query: BGPQuery,
                      optimize: bool = True) -> ResultSet:
    """Evaluate a BGP query through the set-at-a-time pipeline.

    Semantics are identical to :func:`repro.sparql.evaluator.evaluate`
    (projection, preset fallback, DISTINCT, LIMIT); only the final
    projected rows are decoded.
    """
    with span("joins.evaluate", atoms=len(query.patterns)) as sp:
        plan = compile_bgp(graph, query.patterns, optimize)
        sp.set(scan_steps=plan.scan_steps(),
               intersect_steps=plan.intersect_steps())
        results = ResultSet(query.distinguished, distinct=query.distinct)
        decode = graph.dictionary.decode
        preset = query.preset
        # per distinguished variable: its slot, or its preset constant,
        # or None (diagnosed on the first produced row, as in evaluate)
        projection: List[Tuple[Optional[int], Optional[Term]]] = []
        for variable in query.distinguished:
            projection.append((plan.slot_of.get(variable),
                               preset.get(variable)))
        limit = query.limit
        for binding in plan.run():
            row: List[Term] = []
            for slot, constant in projection:
                value = binding[slot] if slot is not None else None
                if value is not None:
                    row.append(decode(value))
                elif constant is not None:
                    row.append(constant)
                else:
                    raise ValueError(
                        f"unbound distinguished variable in "
                        f"{query.to_sparql()!r}")
            results.add(tuple(row))
            if limit is not None and len(results) >= limit:
                break
        sp.set(answers=len(results))
    return results
