"""Parser for the SPARQL BGP (conjunctive) query dialect.

Supported grammar — the dialect of Section II-A:

.. code-block:: text

    query    := prefix* select
    prefix   := 'PREFIX' PNAME ':' IRIREF
    select   := 'SELECT' 'DISTINCT'? ('*' | var+) 'WHERE' '{' triples '}'
                ('LIMIT' INT)?
    triples  := block (('.' | ';' | ',') ...)   -- Turtle-style shortcuts

Terms: IRIs (``<...>``), prefixed names (``foaf:knows``), the ``a``
keyword, variables (``?x`` / ``$x``), literals (plain, ``@lang``,
``^^datatype``, bare numbers/booleans) and blank nodes (``_:b``),
which — per the SPARQL semantics of BGPs — act as non-distinguished
variables and are parsed as such.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..rdf.namespaces import NamespaceManager, RDF, XSD
from ..rdf.ntriples import _unescape
from ..rdf.terms import Literal, PatternTerm, URI, Variable
from ..rdf.triples import TriplePattern
from .ast import BGPQuery

__all__ = ["parse_query", "SPARQLSyntaxError"]


class SPARQLSyntaxError(ValueError):
    """Raised on malformed query text."""


_TOKEN_RE = re.compile(
    r"""
      (?P<comment>\#[^\n]*)
    | (?P<uri><[^<>"{}|^`\\\x00-\x20]*>)
    | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^(?:<[^<>]*>|[A-Za-z][\w.-]*:[\w.-]*)|@[A-Za-z]+(?:-[A-Za-z0-9]+)*)?)
    | (?P<var>[?$][A-Za-z_][\w]*)
    | (?P<blank>_:[A-Za-z0-9][A-Za-z0-9._-]*)
    | (?P<number>[+-]?\d+\.\d+|[+-]?\d+)
    | (?P<keyword>(?i:PREFIX|SELECT|DISTINCT|WHERE|LIMIT|ASK|UNION)\b)
    | (?P<boolean>\btrue\b|\bfalse\b)
    | (?P<pname>[A-Za-z][\w.-]*:[\w.-]*|:[\w.-]+|[A-Za-z][\w.-]*:)
    | (?P<kw_a>\ba\b)
    | (?P<star>\*)
    | (?P<punct>[{}.;,])
    | (?P<ws>\s+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            snippet = text[position:position + 30]
            raise SPARQLSyntaxError(
                f"unexpected input at offset {position}: {snippet!r}")
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str, namespaces: Optional[NamespaceManager]):
        self.tokens = _tokenize(text)
        self.position = 0
        self.namespaces = (namespaces.copy() if namespaces is not None
                           else NamespaceManager())
        self._blank_vars: Dict[str, Variable] = {}

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SPARQLSyntaxError("unexpected end of query")
        self.position += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        kind, value = self.next()
        if kind != "keyword" or value.upper() != keyword:
            raise SPARQLSyntaxError(f"expected {keyword}, got {value!r}")

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return (token is not None and token[0] == "keyword"
                and token[1].upper() == keyword)

    def expect_punct(self, value: str) -> None:
        kind, got = self.next()
        if kind != "punct" or got != value:
            raise SPARQLSyntaxError(f"expected {value!r}, got {got!r}")

    # -- grammar --------------------------------------------------------

    def query(self) -> BGPQuery:
        while self.at_keyword("PREFIX"):
            self.next()
            kind, prefix_token = self.next()
            if kind != "pname":
                raise SPARQLSyntaxError(
                    f"expected a prefix name after PREFIX, got {prefix_token!r}")
            kind, uri_token = self.next()
            if kind != "uri":
                raise SPARQLSyntaxError(
                    f"expected an IRI after PREFIX {prefix_token}, got {uri_token!r}")
            self.namespaces.bind(prefix_token.rstrip(":"), uri_token[1:-1])

        if self.at_keyword("ASK"):
            # ASK { ... }: a boolean query — all variables existential,
            # one witness binding suffices.  WHERE is optional per the
            # SPARQL grammar.
            self.next()
            if self.at_keyword("WHERE"):
                self.next()
            self.expect_punct("{")
            patterns = self.triples_block()
            self.expect_punct("}")
            trailing = self.peek()
            if trailing is not None:
                raise SPARQLSyntaxError(
                    f"unexpected trailing input: {trailing[1]!r}")
            if not patterns:
                raise SPARQLSyntaxError("empty ASK block")
            try:
                return BGPQuery(patterns, limit=1)
            except ValueError as error:
                raise SPARQLSyntaxError(str(error)) from None

        self.expect_keyword("SELECT")
        distinct = False
        if self.at_keyword("DISTINCT"):
            self.next()
            distinct = True

        projection: Optional[List[Variable]] = None
        token = self.peek()
        if token is not None and token[0] == "star":
            self.next()
        else:
            projection = []
            while True:
                token = self.peek()
                if token is None or token[0] != "var":
                    break
                self.next()
                projection.append(Variable(token[1]))
            if not projection:
                raise SPARQLSyntaxError("SELECT needs '*' or at least one variable")

        self.expect_keyword("WHERE")
        self.expect_punct("{")

        # `{ BGP } UNION { BGP } ...` -> a union query; plain triples
        # -> an ordinary BGP
        union_groups: Optional[List[List[TriplePattern]]] = None
        token = self.peek()
        if token is not None and token == ("punct", "{"):
            union_groups = [self.braced_block()]
            while self.at_keyword("UNION"):
                self.next()
                union_groups.append(self.braced_block())
            self.expect_punct("}")
            patterns = []
        else:
            patterns = self.triples_block()
            self.expect_punct("}")

        limit: Optional[int] = None
        if self.at_keyword("LIMIT"):
            self.next()
            kind, value = self.next()
            if kind != "number" or "." in value:
                raise SPARQLSyntaxError(f"expected an integer after LIMIT, got {value!r}")
            limit = int(value)

        trailing = self.peek()
        if trailing is not None:
            raise SPARQLSyntaxError(f"unexpected trailing input: {trailing[1]!r}")

        if union_groups is not None:
            from .union import UnionQuery

            if any(not group for group in union_groups):
                raise SPARQLSyntaxError("empty group in UNION")
            try:
                branches = [BGPQuery(group) for group in union_groups]
                return UnionQuery(branches, projection, distinct=distinct,
                                  limit=limit)
            except ValueError as error:
                raise SPARQLSyntaxError(str(error)) from None

        if not patterns:
            raise SPARQLSyntaxError("empty WHERE clause")
        try:
            return BGPQuery(patterns, projection, distinct=distinct, limit=limit)
        except ValueError as error:
            raise SPARQLSyntaxError(str(error)) from None

    def braced_block(self) -> List[TriplePattern]:
        self.expect_punct("{")
        patterns = self.triples_block()
        self.expect_punct("}")
        return patterns

    def triples_block(self) -> List[TriplePattern]:
        patterns: List[TriplePattern] = []
        while True:
            token = self.peek()
            if token is None or (token[0] == "punct" and token[1] == "}"):
                return patterns
            subject = self.term(position="subject")
            while True:
                prop = self.term(position="property")
                while True:
                    obj = self.term(position="object")
                    patterns.append(TriplePattern(subject, prop, obj))
                    token = self.peek()
                    if token is not None and token == ("punct", ","):
                        self.next()
                        continue
                    break
                token = self.peek()
                if token is not None and token == ("punct", ";"):
                    self.next()
                    after = self.peek()
                    if after is not None and after[0] == "punct" and after[1] in ".}":
                        break
                    continue
                break
            token = self.peek()
            if token is not None and token == ("punct", "."):
                self.next()

    def term(self, position: str) -> PatternTerm:
        kind, value = self.next()
        if kind == "var":
            return Variable(value)
        if kind == "uri":
            return URI(_unescape(value[1:-1]))
        if kind == "pname":
            try:
                return self.namespaces.expand(value)
            except KeyError as error:
                raise SPARQLSyntaxError(str(error)) from None
        if kind == "kw_a":
            if position != "property":
                raise SPARQLSyntaxError("'a' keyword only allowed as a property")
            return RDF.type
        if kind == "blank":
            label = value[2:]
            variable = self._blank_vars.get(label)
            if variable is None:
                variable = Variable(f"_bnode_{label}")
                self._blank_vars[label] = variable
            return variable
        if kind == "literal":
            if position != "object":
                raise SPARQLSyntaxError("literal only allowed in object position")
            return self._literal(value)
        if kind == "number":
            if position != "object":
                raise SPARQLSyntaxError("numeric literal only allowed in object position")
            datatype = XSD.decimal if "." in value else XSD.integer
            return Literal(value, datatype=datatype)
        if kind == "boolean":
            if position != "object":
                raise SPARQLSyntaxError("boolean literal only allowed in object position")
            return Literal(value, datatype=XSD.boolean)
        raise SPARQLSyntaxError(f"unexpected token {value!r} in {position} position")

    def _literal(self, token: str) -> Literal:
        index = 1
        while index < len(token):
            if token[index] == "\\":
                index += 2
                continue
            if token[index] == '"':
                break
            index += 1
        lexical = _unescape(token[1:index])
        suffix = token[index + 1:]
        if suffix.startswith("^^"):
            datatype_token = suffix[2:]
            if datatype_token.startswith("<"):
                return Literal(lexical, datatype=URI(datatype_token[1:-1]))
            try:
                return Literal(lexical, datatype=self.namespaces.expand(datatype_token))
            except KeyError as error:
                raise SPARQLSyntaxError(str(error)) from None
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        return Literal(lexical)


def parse_query(text: str, namespaces: Optional[NamespaceManager] = None):
    """Parse SPARQL text into a :class:`BGPQuery` — or a
    :class:`~repro.sparql.union.UnionQuery` when the WHERE clause is a
    ``{ … } UNION { … }`` of groups.

    ``namespaces`` provides extra prefix bindings (e.g. a graph's);
    the standard prefixes (rdf, rdfs, xsd, owl) are always available.

    >>> q = parse_query("SELECT ?x WHERE { ?x a <http://example.org/Person> }")
    >>> q.arity()
    1
    """
    return _Parser(text, namespaces).query()
