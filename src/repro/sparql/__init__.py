"""SPARQL BGP dialect: AST, parser, optimizer and evaluation.

Implements the query side of the paper: basic graph pattern
(conjunctive) queries, evaluated over a graph's explicit triples —
the reasoning techniques (saturation / reformulation) decide *which*
graph or *which* query gets evaluated.
"""

from .ast import BGPQuery, canonical_form
from .bindings import ResultSet
from .containment import find_homomorphism, is_contained_in, minimize_ucq
from .evaluator import (evaluate, evaluate_ask, evaluate_bgp_bindings,
                        evaluate_factorized, evaluate_reformulation,
                        evaluate_ucq)
from .joins import BGPPlan, compile_bgp, evaluate_columnar
from .optimizer import (PlanStep, estimate_cardinality, explain_plan,
                        order_patterns)
from .parser import SPARQLSyntaxError, parse_query
from .union import UnionQuery
from .update import UpdateOperation, parse_update

__all__ = [
    "BGPQuery", "canonical_form",
    "ResultSet",
    "evaluate", "evaluate_ask", "evaluate_bgp_bindings", "evaluate_ucq",
    "find_homomorphism", "is_contained_in", "minimize_ucq",
    "evaluate_factorized", "evaluate_reformulation",
    "BGPPlan", "compile_bgp", "evaluate_columnar",
    "estimate_cardinality", "order_patterns", "explain_plan", "PlanStep",
    "parse_query", "SPARQLSyntaxError", "UnionQuery",
    "parse_update", "UpdateOperation",
]
