"""Command-line interface: the library as a small RDF reasoning tool.

Subcommands mirror the paper's workflow:

* ``info``        — load a graph, report sizes and schema diagnostics;
* ``saturate``    — compute G∞, print the summary, optionally dump it;
* ``query``       — answer a SPARQL BGP query under a chosen strategy;
* ``ask``         — boolean query under a chosen strategy;
* ``reformulate`` — print the UCQ a query rewrites into;
* ``explain``     — print a proof tree for an entailed triple;
* ``thresholds``  — Figure 3 on the given graph and queries;
* ``generate``    — emit a seeded LUBM-style university graph;
* ``stats``       — saturate (and optionally query), then print the
  observability report: per-rule fire counts, histograms, span trees.
* ``lint``        — static analysis: Datalog program and rule-set
  checks plus the engine-invariant lint; exits non-zero on errors.
* ``serve``       — long-lived SPARQL endpoint over HTTP: concurrent
  queries and updates, version-keyed result cache, admission control.

The global ``--trace`` flag wraps any subcommand in a fresh
measurement window and prints the collected metrics and span tree to
stderr after the command's own output.

Graphs load from ``.ttl``/``.turtle`` (Turtle) or ``.nt``/``.ntriples``
(N-Triples) files, or from ``-`` (Turtle on stdin).
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Optional, Sequence

from .db import RDFDatabase, Strategy
from .sparql.evaluator import REFORMULATION_STRATEGIES
from .rdf import (Graph, Triple, URI, graph_from_ntriples, graph_from_turtle,
                  serialize_ntriples, serialize_turtle)
from .reasoning import get_ruleset, reformulate, saturate
from .reasoning.explain import explain
from .schema import Schema, validate_schema
from .sparql import parse_query

__all__ = ["main", "build_parser"]


def _load_graph(path: str, backend: str = "hash") -> Graph:
    if path == "-":
        graph = graph_from_turtle(sys.stdin.read())
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        lowered = path.lower()
        if lowered.endswith((".nt", ".ntriples")):
            graph = graph_from_ntriples(text)
        elif lowered.endswith((".ttl", ".turtle")):
            graph = graph_from_turtle(text)
        else:
            raise SystemExit(f"unsupported file extension: {path} "
                             f"(expected .ttl/.turtle/.nt/.ntriples)")
    if backend != graph.backend:
        graph = graph.to_backend(backend)
    return graph


#: ``--strategy`` accepts the four reasoning regimes plus the three
#: reformulated-query evaluation strategies (which imply the
#: reformulation regime): ``--strategy encoded`` is shorthand for
#: "reformulation, evaluated through the semantic interval encoding".
_STRATEGY_CHOICES = tuple(s.value for s in Strategy) + REFORMULATION_STRATEGIES


def _resolve_strategy(name: str) -> tuple:
    """Map a ``--strategy`` value to ``(Strategy, reformulation_strategy)``."""
    if name in REFORMULATION_STRATEGIES:
        return Strategy.REFORMULATION, name
    return Strategy(name), "factorized"


def _dump_graph(graph: Graph, path: str) -> None:
    if path.lower().endswith((".nt", ".ntriples")):
        text = serialize_ntriples(graph, sort=True)
    else:
        text = serialize_turtle(graph)
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reasoning on Web Data: saturation- and "
                    "reformulation-based RDF query answering")
    parser.add_argument("--trace", action="store_true",
                        help="print collected metrics and span tree to "
                             "stderr after the command finishes")
    parser.add_argument("--backend", default="hash",
                        choices=("hash", "columnar"),
                        help="index layout for loaded graphs: hash "
                             "(default) or columnar sorted runs")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("graph", help="input file (.ttl/.nt) or '-' for stdin")

    def add_ruleset_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--ruleset", default="rdfs-default",
                         help="rule set: rhodf, rdfs-default, rdfs-full, "
                              "rdfs-plus (default: rdfs-default)")

    sub = subparsers.add_parser("info", help="graph sizes and schema report")
    add_graph_argument(sub)

    sub = subparsers.add_parser("saturate", help="compute the closure G-inf")
    add_graph_argument(sub)
    add_ruleset_argument(sub)
    sub.add_argument("-o", "--output", help="write the saturated graph here")
    sub.add_argument("--engine", default="auto",
                     choices=["auto", "seminaive", "schema-aware"])

    def add_strategy_argument(sub: argparse.ArgumentParser,
                              default: str) -> None:
        sub.add_argument("--strategy", default=default,
                         choices=list(_STRATEGY_CHOICES),
                         help="reasoning regime (none, saturation, "
                              "reformulation, backward) or a reformulated-"
                              "query evaluation strategy (factorized, ucq, "
                              "encoded — implies reformulation) "
                              f"(default: {default})")

    sub = subparsers.add_parser("query", help="answer a SPARQL BGP query")
    add_graph_argument(sub)
    add_ruleset_argument(sub)
    sub.add_argument("-q", "--query", required=True, help="SPARQL text")
    add_strategy_argument(sub, "reformulation")
    sub.add_argument("--max-rows", type=int, default=25)
    sub.add_argument("--format", default="table",
                     choices=("table", "json", "csv"),
                     help="output: human table (default), W3C SPARQL "
                          "results JSON, or W3C results CSV")

    sub = subparsers.add_parser("ask", help="boolean (ASK) query")
    add_graph_argument(sub)
    add_ruleset_argument(sub)
    sub.add_argument("-q", "--query", required=True, help="SPARQL ASK text")
    add_strategy_argument(sub, "reformulation")

    sub = subparsers.add_parser("reformulate",
                                help="print the UCQ a query rewrites into")
    add_graph_argument(sub)
    sub.add_argument("-q", "--query", required=True, help="SPARQL text")
    sub.add_argument("--minimize", action="store_true",
                     help="drop conjuncts subsumed by others")

    sub = subparsers.add_parser("explain",
                                help="proof tree for an entailed triple")
    add_graph_argument(sub)
    add_ruleset_argument(sub)
    sub.add_argument("-s", "--subject", required=True)
    sub.add_argument("-p", "--property", required=True)
    sub.add_argument("-o", "--object", required=True)

    sub = subparsers.add_parser("thresholds",
                                help="Figure 3 thresholds on this graph")
    add_graph_argument(sub)
    sub.add_argument("-q", "--query", action="append", default=[],
                     help="SPARQL query (repeatable); defaults to the "
                          "built-in Q1-Q10 workload")
    sub.add_argument("--update-size", type=int, default=10)
    sub.add_argument("--repeat", type=int, default=2)
    sub.add_argument("--csv", action="store_true",
                     help="emit CSV instead of the table + chart")

    sub = subparsers.add_parser("generate",
                                help="emit a seeded LUBM-style graph")
    sub.add_argument("--departments", type=int, default=1)
    sub.add_argument("--universities", type=int, default=1)
    sub.add_argument("--seed", type=int, default=20150413)
    sub.add_argument("-o", "--output", default="-")

    sub = subparsers.add_parser(
        "stats",
        help="saturate (and optionally query), print the obs report")
    add_graph_argument(sub)
    add_ruleset_argument(sub)
    sub.add_argument("-q", "--query", action="append", default=[],
                     help="SPARQL query to run inside the measured "
                          "window (repeatable)")
    add_strategy_argument(sub, "saturation")
    sub.add_argument("--json", action="store_true",
                     help="emit the machine-readable JSON report "
                          "instead of the text rendering")
    sub.add_argument("-o", "--output",
                     help="also write the JSON report to this file")

    sub = subparsers.add_parser(
        "lint",
        help="static analysis: Datalog/rule-set checks and engine-"
             "invariant lint (exit 1 on error-severity findings)")
    sub.add_argument("target", nargs="*",
                     help="files or directories: *.py for the engine-"
                          "invariant lint, *.dlg/*.dl/*.datalog for the "
                          "Datalog program passes (directories are "
                          "walked for both)")
    sub.add_argument("--ruleset", action="append", default=[],
                     dest="rulesets", metavar="NAME",
                     help="analyze this entailment rule set "
                          "(repeatable): recursion cliques, subsumed "
                          "rules, and — with --graph — dead rules")
    sub.add_argument("--graph", help="graph file whose schema grounds "
                                     "the dead-rule and blow-up passes")
    sub.add_argument("-q", "--query", action="append", default=[],
                     help="SPARQL query for the reformulation blow-up "
                          "estimate (repeatable, needs --graph)")
    sub.add_argument("--max-ucq", type=int, default=1000,
                     help="blow-up budget: predicted UCQ sizes above "
                          "this raise SC106 to a warning (default 1000)")
    sub.add_argument("--select", action="append", default=[],
                     metavar="PREFIX",
                     help="keep only diagnostic codes starting with "
                          "this prefix (repeatable; e.g. SC30 selects "
                          "the concurrency family, SC303 one code)")
    sub.add_argument("--ignore", action="append", default=[],
                     metavar="PREFIX",
                     help="drop diagnostic codes starting with this "
                          "prefix (repeatable; applied after --select)")
    sub.add_argument("--json", action="store_true",
                     help="emit the repro-lint-report/2 JSON instead "
                          "of the text rendering")
    sub.add_argument("-o", "--output",
                     help="also write the JSON report to this file")

    sub = subparsers.add_parser(
        "serve",
        help="serve the graph over HTTP: GET/POST /sparql, POST "
             "/update, POST /snapshot, GET /healthz, GET /stats")
    sub.add_argument("graph", nargs="?",
                     help="input file (.ttl/.nt) or '-' for stdin; "
                          "optional with --storage-dir (a committed "
                          "store supplies the graph, an empty one "
                          "starts empty)")
    add_ruleset_argument(sub)
    add_strategy_argument(sub, "saturation")
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=8000,
                     help="TCP port; 0 binds an ephemeral port and "
                          "prints the assignment (default 8000)")
    sub.add_argument("--workers", type=int, default=4,
                     help="worker threads executing requests (default 4)")
    sub.add_argument("--queue-depth", type=int, default=16,
                     help="admission queue bound; a full queue answers "
                          "503 (default 16)")
    sub.add_argument("--timeout", type=float, default=10.0,
                     help="default per-request deadline in seconds; "
                          "exceeded deadlines answer 504 (default 10; "
                          "0 disables)")
    sub.add_argument("--cache-size", "--cache-capacity", type=int,
                     default=256, dest="cache_size",
                     help="query-result cache entries (LRU capacity; "
                          "default 256)")
    sub.add_argument("--storage-dir",
                     help="durable storage directory: updates are "
                          "WAL-logged before acknowledgment and the "
                          "store recovers to the exact pre-crash graph "
                          "version on restart; reopening a committed "
                          "store restores its graph and configuration")
    sub.add_argument("--snapshot-every", type=int, default=None,
                     metavar="N",
                     help="fold the WAL into a snapshot automatically "
                          "after N logged updates (default 512)")
    sub.add_argument("--frontend", choices=("threaded", "asyncio"),
                     default="threaded",
                     help="connection handling: 'threaded' (stdlib "
                          "thread per connection) or 'asyncio' (one "
                          "event loop; same routes and status codes, "
                          "flatter tail latency under connection "
                          "overload)")
    sub.add_argument("--shards", type=int, default=0, metavar="N",
                     help="serve from N forked shard worker processes: "
                          "instance triples hash-partitioned by subject "
                          "(schema replicated), queries scatter-gathered "
                          "by the coordinator; incompatible with "
                          "--storage-dir (default 0: single process)")

    sub = subparsers.add_parser(
        "views",
        help="workload-driven materialized views: mine candidates, "
             "apply a selection, list what a store has installed")
    vsub = sub.add_subparsers(dest="views_command", required=True)

    def add_views_workload_arguments(vp: argparse.ArgumentParser) -> None:
        vp.add_argument("graph", nargs="?",
                        help="input file (.ttl/.nt) or '-' for stdin; "
                             "optional for 'apply' when --storage-dir "
                             "names a committed store")
        add_ruleset_argument(vp)
        add_strategy_argument(vp, "saturation")
        vp.add_argument("-q", "--query", action="append", default=[],
                        required=True, metavar="SPARQL",
                        help="workload query (repeatable; each occurrence "
                             "counts once toward support)")
        vp.add_argument("--min-support", type=int, default=1,
                        help="keep candidates backed by at least this "
                             "many workload queries (default 1)")
        vp.add_argument("--max-atoms", type=int, default=4,
                        help="largest subquery enumerated (default 4)")
        vp.add_argument("--budget-rows", type=int, default=50_000,
                        help="total materialized-row budget (default 50000)")
        vp.add_argument("--max-views", type=int, default=8,
                        help="most views selected (default 8)")

    vp = vsub.add_parser("mine",
                         help="mine + score candidate views for a "
                              "workload; report, don't install")
    add_views_workload_arguments(vp)

    vp = vsub.add_parser("apply",
                         help="mine, select and install views; with "
                              "--storage-dir the installed set commits "
                              "to the store's manifest")
    add_views_workload_arguments(vp)
    vp.add_argument("--storage-dir",
                    help="durable storage directory to commit the "
                         "installed views into")

    vp = vsub.add_parser("list",
                         help="show the views a committed store has "
                              "installed")
    vp.add_argument("--storage-dir", required=True,
                    help="durable storage directory to inspect")

    return parser


def _cmd_info(args) -> int:
    graph = _load_graph(args.graph, args.backend)
    schema = Schema.from_graph(graph)
    instance = len(graph) - len(schema)
    print(f"triples: {len(graph)} ({len(schema)} schema, {instance} instance)")
    print(f"distinct properties: {len(graph.predicates())}")
    print(validate_schema(schema).summary())
    return 0


def _cmd_saturate(args) -> int:
    graph = _load_graph(args.graph, args.backend)
    result = saturate(graph, get_ruleset(args.ruleset), engine=args.engine)
    print(result.summary())
    for rule, count in sorted(result.rule_counts.items()):
        if count:
            print(f"  {rule}: {count} derivations")
    if args.output:
        _dump_graph(result.graph, args.output)
        print(f"saturated graph written to {args.output}")
    return 0


def _cmd_query(args) -> int:
    graph = _load_graph(args.graph, args.backend)
    strategy, reformulation_strategy = _resolve_strategy(args.strategy)
    db = RDFDatabase(graph, strategy=strategy,
                     ruleset=get_ruleset(args.ruleset),
                     reformulation_strategy=reformulation_strategy)
    results = db.query(args.query)
    if args.format == "json":
        from .sparql.results import results_to_json
        print(results_to_json(results))
    elif args.format == "csv":
        from .sparql.results import results_to_csv
        sys.stdout.write(results_to_csv(results))
    else:
        print(results.pretty(max_rows=args.max_rows))
        print(f"({len(results)} row(s), strategy={args.strategy})")
    return 0


def _cmd_ask(args) -> int:
    graph = _load_graph(args.graph, args.backend)
    strategy, reformulation_strategy = _resolve_strategy(args.strategy)
    db = RDFDatabase(graph, strategy=strategy,
                     ruleset=get_ruleset(args.ruleset),
                     reformulation_strategy=reformulation_strategy)
    answer = db.ask_query(args.query)
    print("yes" if answer else "no")
    return 0 if answer else 1


def _cmd_reformulate(args) -> int:
    graph = _load_graph(args.graph, args.backend)
    schema = Schema.from_graph(graph)
    query = parse_query(args.query, graph.namespaces)
    reformulation = reformulate(query, schema)
    conjuncts = (reformulation.to_minimized_ucq() if args.minimize
                 else reformulation.to_ucq())
    print(reformulation.summary())
    if args.minimize:
        print(f"after minimization: {len(conjuncts)} conjunct(s)")
    for conjunct in conjuncts:
        print(f"  UNION {conjunct.to_sparql()}")
    return 0


def _cmd_explain(args) -> int:
    graph = _load_graph(args.graph, args.backend)
    triple = Triple(URI(args.subject), URI(args.property), URI(args.object))
    proof = explain(graph, triple, get_ruleset(args.ruleset))
    if proof is None:
        print(f"not entailed: {triple.n3()}")
        return 1
    print(proof.pretty())
    leaves = ", ".join(t.n3().rstrip(" .") for t in sorted(proof.leaves()))
    print(f"\nrests on {len(proof.leaves())} explicit triple(s): {leaves}")
    return 0


def _cmd_thresholds(args) -> int:
    from .analysis import analyze_thresholds
    from .workloads import WORKLOAD_QUERIES

    graph = _load_graph(args.graph, args.backend)
    if args.query:
        queries = [(f"q{i + 1}", parse_query(text, graph.namespaces))
                   for i, text in enumerate(args.query)]
    else:
        queries = [(qid, q) for qid, (__, q) in WORKLOAD_QUERIES.items()]
    report = analyze_thresholds(graph, queries, repeat=args.repeat,
                                update_size=args.update_size)
    if args.csv:
        print(report.to_csv())
    else:
        print(report.to_table())
        print()
        print(report.to_ascii_chart())
        print(f"\nspread: {report.spread_orders_of_magnitude():.1f} "
              f"orders of magnitude")
    return 0


def _cmd_generate(args) -> int:
    from .workloads import LUBMConfig, generate_lubm

    config = LUBMConfig(universities=args.universities,
                        departments=args.departments, seed=args.seed)
    graph = generate_lubm(config)
    _dump_graph(graph, args.output)
    if args.output != "-":
        print(f"{len(graph)} triples written to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    from .obs import (measurement_window, observability_report,
                      render_report, report_to_json)

    graph = _load_graph(args.graph, args.backend)
    strategy, reformulation_strategy = _resolve_strategy(args.strategy)
    with measurement_window() as (registry, tracer):
        db = RDFDatabase(graph, strategy=strategy,
                         ruleset=get_ruleset(args.ruleset),
                         reformulation_strategy=reformulation_strategy)
        for text in args.query:
            db.query(text)
    report = observability_report(
        registry, tracer, command="stats", graph=args.graph,
        ruleset=args.ruleset, strategy=args.strategy,
        triples=len(db.graph), queries=len(args.query))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report_to_json(report) + "\n")
    print(report_to_json(report) if args.json else render_report(report))
    return 0


def _cmd_lint(args) -> int:
    from .staticcheck import run_lint

    graph = _load_graph(args.graph, args.backend) if args.graph else None
    namespaces = graph.namespaces if graph is not None else None
    queries = [(f"q{i + 1}", parse_query(text, namespaces))
               for i, text in enumerate(args.query)]
    if queries and graph is None:
        raise SystemExit("--query needs --graph (the schema grounds "
                         "the blow-up estimate)")
    try:
        report = run_lint(
            paths=args.target,
            rulesets=[get_ruleset(name) for name in args.rulesets],
            graph=graph, queries=queries, ucq_budget=args.max_ucq)
    except (ValueError, OSError) as error:
        raise SystemExit(str(error))
    if args.select or args.ignore:
        report = report.filtered(select=args.select, ignore=args.ignore)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
    print(report.to_json() if args.json else report.render())
    return report.exit_code()


def _cmd_serve(args) -> int:
    from typing import cast

    from .server import (ReproHTTPServer, ServerConfig, ServingDatabase,
                         build_sharded_database)
    from .storage import DEFAULT_SNAPSHOT_EVERY, DurableStore

    strategy, reformulation_strategy = _resolve_strategy(args.strategy)
    config = ServerConfig(
        workers=args.workers, queue_depth=args.queue_depth,
        timeout=args.timeout if args.timeout > 0 else None,
        cache_size=args.cache_size, host=args.host, port=args.port)
    if args.shards:
        # the sharded tier: N forked workers, no durable storage
        if args.storage_dir:
            raise SystemExit(
                "--shards is incompatible with --storage-dir: the "
                "sharded tier keeps every fragment in memory")
        if not args.graph:
            raise SystemExit("serve --shards needs a graph file")
        graph = _load_graph(args.graph, args.backend)
        sharded = build_sharded_database(
            graph, args.shards, strategy=strategy,
            ruleset=get_ruleset(args.ruleset), backend=args.backend,
            reformulation_strategy=reformulation_strategy,
            cache_size=args.cache_size)
        # duck-types the ServingDatabase surface the front-ends consume
        service = cast(ServingDatabase, sharded)
        triples = len(graph)
        strategy_label, backend_label = strategy.value, args.backend
        extras = f", shards={args.shards}"
        close = sharded.close
    else:
        snapshot_every = (args.snapshot_every if args.snapshot_every
                          else DEFAULT_SNAPSHOT_EVERY)
        if args.storage_dir and DurableStore.exists(args.storage_dir):
            # a committed store carries its graph and configuration;
            # mixing in a fresh graph file would silently fork history
            if args.graph:
                raise SystemExit(
                    f"{args.storage_dir} already holds a committed store; "
                    "drop the graph argument to reopen it (or point "
                    "--storage-dir at an empty directory to start fresh)")
            db = RDFDatabase(storage_dir=args.storage_dir,
                             snapshot_every=snapshot_every)
        else:
            if args.graph:
                graph = _load_graph(args.graph, args.backend)
            elif args.storage_dir:
                graph = Graph(backend=args.backend)
            else:
                raise SystemExit("serve needs a graph file or --storage-dir")
            db = RDFDatabase(graph, strategy=strategy,
                             ruleset=get_ruleset(args.ruleset),
                             reformulation_strategy=reformulation_strategy,
                             storage_dir=args.storage_dir,
                             snapshot_every=snapshot_every)
        service = ServingDatabase(db, cache_size=config.cache_size)
        triples = len(db)
        strategy_label, backend_label = db.strategy.value, db.backend
        extras = f", storage={args.storage_dir}" if args.storage_dir else ""
        close = db.close
    if args.frontend == "asyncio":
        from .server import ReproAsyncServer

        aserver = ReproAsyncServer(service, config)
        aserver.start()
        # the port line is machine-read by the smoke harness; keep it first
        print(f"serving {triples} triples on {aserver.base_url} "
              f"(strategy={strategy_label}, backend={backend_label}, "
              f"workers={config.workers}, frontend=asyncio{extras})",
              flush=True)
        try:
            threading.Event().wait()  # the loop thread does the serving
        except KeyboardInterrupt:
            pass
        finally:
            aserver.shutdown()
            close()
        return 0
    server = ReproHTTPServer(service, config)
    # the port line is machine-read by the smoke harness; keep it first
    print(f"serving {triples} triples on {server.base_url} "
          f"(strategy={strategy_label}, backend={backend_label}, "
          f"workers={config.workers}{extras})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        close()
    return 0


def _views_database(args) -> RDFDatabase:
    """The database a ``views`` subcommand operates on: a committed
    store when ``--storage-dir`` names one, the loaded graph
    otherwise."""
    from .storage import DurableStore

    storage_dir = getattr(args, "storage_dir", None)
    if storage_dir and DurableStore.exists(storage_dir):
        if args.graph:
            raise SystemExit(
                f"{storage_dir} already holds a committed store; drop "
                "the graph argument to operate on it")
        return RDFDatabase(storage_dir=storage_dir,
                           view_budget_rows=args.budget_rows)
    if not args.graph:
        raise SystemExit("views needs a graph file or a committed "
                         "--storage-dir")
    strategy, reformulation_strategy = _resolve_strategy(args.strategy)
    return RDFDatabase(_load_graph(args.graph, args.backend),
                       strategy=strategy,
                       ruleset=get_ruleset(args.ruleset),
                       reformulation_strategy=reformulation_strategy,
                       storage_dir=storage_dir,
                       view_budget_rows=args.budget_rows)


def _views_workload(db: RDFDatabase, texts: Sequence[str]) -> list:
    from .sparql.ast import BGPQuery

    workload = []
    for text in texts:
        parsed = parse_query(text, db.graph.namespaces)
        if not isinstance(parsed, BGPQuery):
            raise SystemExit(f"views only mine BGP queries: {text!r}")
        workload.append((parsed, 1, 0.0))
    return workload


def _print_view_report(report: dict) -> None:
    print(f"workload queries: {report['workload_queries']}")
    print(f"candidates: {report['candidates']} "
          f"({report['rejected']} rejected by the selector)")
    selected = report["selected"]
    print(f"selected: {len(selected)} "
          f"(~{report['estimated_rows']} estimated rows)")
    for definition in selected:
        print(f"  {definition}")


def _cmd_views(args) -> int:
    if args.views_command == "list":
        from .storage import DurableStore

        if not DurableStore.exists(args.storage_dir):
            raise SystemExit(f"{args.storage_dir} holds no committed store")
        db = RDFDatabase(storage_dir=args.storage_dir)
        try:
            info = db.views.stats()
            state = "enabled" if info["enabled"] else "disabled"
            views = info["views"]
            print(f"views: {len(views)} installed ({state}, "
                  f"budget {info['budget_rows']} rows)")
            for view in views:
                print(f"  {view['name']}: {view['rows']} rows "
                      f"(arity {view['arity']}, version {view['version']})")
                print(f"    {view['definition']}")
        finally:
            db.close()
        return 0

    db = _views_database(args)
    try:
        workload = _views_workload(db, args.query)
        report = db.advise_views(workload=workload,
                                 max_atoms=args.max_atoms,
                                 min_support=args.min_support,
                                 max_views=args.max_views)
        _print_view_report(report)
        if args.views_command == "apply":
            selected = list(report["selected"])
            if not selected:
                print("nothing to install")
                return 1
            names = db.install_views(selected)
            committed = (" (committed to the store's manifest)"
                         if db.storage is not None else "")
            print(f"installed: {', '.join(names)}{committed}")
            for view in db.views.stats()["views"]:
                print(f"  {view['name']}: {view['rows']} rows materialized")
    finally:
        db.close()
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "saturate": _cmd_saturate,
    "query": _cmd_query,
    "ask": _cmd_ask,
    "reformulate": _cmd_reformulate,
    "explain": _cmd_explain,
    "thresholds": _cmd_thresholds,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "views": _cmd_views,
}


def _run_traced(args) -> int:
    from .obs import measurement_window, observability_report, render_report

    with measurement_window() as (registry, tracer):
        status = _COMMANDS[args.command](args)
    report = observability_report(registry, tracer, command=args.command)
    print("--- trace ---", file=sys.stderr)
    print(render_report(report), file=sys.stderr)
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.trace:
            return _run_traced(args)
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # downstream pager/head closed the pipe: exit quietly, the
        # Unix way (and silence the interpreter-shutdown flush too)
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
