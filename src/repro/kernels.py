"""Vectorized kernel primitives behind the ``REPRO_KERNELS`` flag.

The merge/leapfrog/interval inner loops of the columnar layer
(:mod:`repro.rdf.columnar`, :mod:`repro.sparql.joins`) bottom out in
three primitives: intersecting sorted identifier runs, merging sorted
triple runs, and copying contiguous run ranges.  This module holds one
implementation of each per *kernel mode*:

* ``scalar`` — the per-element reference implementations (the PR 3-era
  inner loops, kept verbatim as the parity baseline the differential
  suite pins the other modes against);
* ``python`` — the default: whole-slice operations on ``array('q')``/
  ``memoryview`` buffers, galloping through C-implemented ``bisect``
  probes and block copies instead of stepping Python bytecode per
  element;
* ``numpy`` — an *optional* accelerator (numpy is not a dependency;
  selecting this mode without numpy installed falls back to
  ``python``): the same primitives through ``np.intersect1d`` /
  ``np.lexsort`` over zero-copy views of the run buffers.

The mode comes from the ``REPRO_KERNELS`` environment variable at
import, defaulting to ``python``; :func:`set_mode` /
:func:`kernel_mode` switch it at runtime (tests and benchmarks flip
modes to compare).  Every mode computes bit-identical outputs — the
contract ``tests/test_kernels_differential.py`` enforces.

All buffers hold non-negative int64 identifiers.  "Value runs" are
strictly increasing (they come from distinct-triple runs under a full
prefix); "triple runs" are flat ``3*n`` buffers sorted in triple
order.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

from .cancellation import CancellationToken

try:  # optional accelerator: never required, never installed here
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None  # type: ignore[assignment]

__all__ = ["KERNEL_MODES", "kernel_mode", "set_mode", "kernel_scope",
           "vectorized", "numpy_available", "intersect_pair",
           "intersect_many", "merge_runs", "Buffer", "EncodedTriple"]

#: A flat int64 buffer: a mutable ``array('q')`` or a (possibly
#: strided) read-only memoryview over one — everything the kernels
#: index, slice and ``len()``.
Buffer = Union[array, "memoryview"]

EncodedTriple = Tuple[int, int, int]

KERNEL_MODES = ("scalar", "python", "numpy")

#: token poll stride inside the per-element kernel loops
_POLL_STRIDE = 0x3FF


def _resolve(requested: Optional[str]) -> str:
    if requested is None or requested == "":
        return "python"
    if requested not in KERNEL_MODES:
        raise ValueError(f"unknown kernel mode {requested!r}; expected one "
                         f"of {', '.join(KERNEL_MODES)}")
    if requested == "numpy" and _np is None:
        return "python"  # optional extra missing: degrade, don't fail
    return requested


_mode = _resolve(os.environ.get("REPRO_KERNELS"))


def kernel_mode() -> str:
    """The active kernel mode: ``scalar``, ``python`` or ``numpy``."""
    return _mode


def numpy_available() -> bool:
    return _np is not None


def vectorized() -> bool:
    """True when the block-at-a-time paths should run (non-scalar)."""
    return _mode != "scalar"


def set_mode(mode: str) -> str:
    """Switch the kernel mode; returns the previous one.

    ``numpy`` without numpy installed raises (use the environment
    variable for the degrade-silently behaviour).
    """
    global _mode
    if mode not in KERNEL_MODES:
        raise ValueError(f"unknown kernel mode {mode!r}; expected one "
                         f"of {', '.join(KERNEL_MODES)}")
    if mode == "numpy" and _np is None:
        raise RuntimeError("kernel mode 'numpy' requires the optional "
                           "numpy extra, which is not installed")
    previous = _mode
    _mode = mode
    return previous


@contextmanager
def kernel_scope(mode: str) -> Iterator[str]:
    """Run a block under ``mode``, restoring the previous mode after."""
    previous = set_mode(mode)
    try:
        yield mode
    finally:
        set_mode(previous)


def _as_numpy(buffer: Buffer):  # -> np.ndarray (zero-copy when possible)
    assert _np is not None
    return _np.asarray(buffer)


# ----------------------------------------------------------------------
# intersect_pair: common values of two sorted, strictly-increasing runs
# ----------------------------------------------------------------------

def _intersect_pair_scalar(a: Buffer, b: Buffer,
                           token: Optional[CancellationToken]) -> array:
    """Reference: two-cursor merge, one comparison per step."""
    out = array("q")
    i = j = 0
    la, lb = len(a), len(b)
    steps = 0
    while i < la and j < lb:
        steps += 1
        if token is not None and steps & _POLL_STRIDE == 0:
            token.raise_if_cancelled()
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def _intersect_pair_python(a: Buffer, b: Buffer,
                           token: Optional[CancellationToken]) -> array:
    """Gallop the smaller run through the larger via C bisect probes."""
    if len(a) > len(b):
        a, b = b, a
    out = array("q")
    append = out.append
    la, lb = len(a), len(b)
    j = 0
    for i in range(la):
        if token is not None and i & _POLL_STRIDE == 0:
            token.raise_if_cancelled()
        v = a[i]
        j = bisect_left(b, v, j, lb)
        if j >= lb:
            break
        if b[j] == v:
            append(v)
            j += 1
    return out


def _intersect_pair_numpy(a: Buffer, b: Buffer,
                          token: Optional[CancellationToken]) -> array:
    if token is not None:
        token.raise_if_cancelled()  # sc: single C call below, no stride
    common = _np.intersect1d(_as_numpy(a), _as_numpy(b), assume_unique=True)
    out = array("q")
    out.frombytes(_np.ascontiguousarray(common, dtype=_np.int64).tobytes())
    return out


def intersect_pair(a: Buffer, b: Buffer,
                   token: Optional[CancellationToken] = None) -> array:
    """Sorted values present in both runs (the k=2 merge join core)."""
    if _mode == "python":
        return _intersect_pair_python(a, b, token)
    if _mode == "numpy":
        return _intersect_pair_numpy(a, b, token)
    return _intersect_pair_scalar(a, b, token)


# ----------------------------------------------------------------------
# intersect_many: the k-ary generalization (leapfrog's unary core)
# ----------------------------------------------------------------------

def intersect_many(buffers: Sequence[Buffer],
                   token: Optional[CancellationToken] = None) -> array:
    """Sorted values common to every run; ``[]`` on no runs.

    Folds pairwise from the smallest run up — every intermediate is no
    larger than the smallest input, so the fold is the cheap order.
    """
    if not buffers:
        return array("q")
    ordered = sorted(buffers, key=len)
    if len(ordered) == 1:
        return array("q", ordered[0])  # defensive copy: callers mutate
    current: Buffer = ordered[0]
    for other in ordered[1:]:
        current = intersect_pair(current, other, token)
        if not len(current):
            break
    assert isinstance(current, array)
    return current


# ----------------------------------------------------------------------
# merge_runs: LSM compaction of one order's (main, delta, dead)
# ----------------------------------------------------------------------

def _merge_runs_scalar(main: Buffer, delta: Sequence[EncodedTriple],
                       dead: Set[EncodedTriple]) -> array:
    """Reference: the PR 3 per-triple merge loop, verbatim."""
    out = array("q")
    di, dn = 0, len(delta)
    for base in range(0, len(main), 3):
        t = (main[base], main[base + 1], main[base + 2])
        if t in dead:
            continue
        while di < dn and delta[di] < t:  # sc: allow(SC303): len(delta)-bounded
            out.extend(delta[di])
            di += 1
        out.extend(t)
    while di < dn:  # sc: allow(SC303): drains the remaining delta items
        out.extend(delta[di])
        di += 1
    return out


def _copy_block(out: array, view: "memoryview", lo: int, hi: int) -> None:
    """Append triples ``[lo, hi)`` of a flat run view to ``out``."""
    if hi > lo:
        out.frombytes(view[3 * lo:3 * hi].cast("B"))


def _triple_lower_bound(view: "memoryview", lo: int, hi: int,
                        t: EncodedTriple) -> int:
    """First triple index in ``[lo, hi)`` comparing >= ``t``.

    Five C bisect probes over the strided component views instead of
    an interpreted binary search with tuple compares.
    """
    a, b, c = t
    v0, v1, v2 = view[0::3], view[1::3], view[2::3]
    lo = bisect_left(v0, a, lo, hi)
    hi = bisect_left(v0, a + 1, lo, hi)
    lo = bisect_left(v1, b, lo, hi)
    hi = bisect_left(v1, b + 1, lo, hi)
    return bisect_left(v2, c, lo, hi)


def _excise_dead_python(main: Buffer, dead: Set[EncodedTriple]) -> array:
    """Copy the survivor blocks around each tombstoned triple."""
    view = memoryview(main) if isinstance(main, array) else main
    n = len(main) // 3
    out = array("q")
    pos = 0
    for t in sorted(dead):
        at = _triple_lower_bound(view, pos, n, t)
        base = 3 * at
        if (at < n and main[base] == t[0] and main[base + 1] == t[1]
                and main[base + 2] == t[2]):
            _copy_block(out, view, pos, at)
            pos = at + 1
    _copy_block(out, view, pos, n)
    return out


def _merge_runs_python(main: Buffer, delta: Sequence[EncodedTriple],
                       dead: Set[EncodedTriple]) -> array:
    if dead:
        main = _excise_dead_python(main, dead)
    if not delta:
        if isinstance(main, array):
            return main if dead else main[:]
        out = array("q")
        out.frombytes(main.cast("B"))
        return out
    view = memoryview(main) if isinstance(main, array) else main
    v0, v1, v2 = view[0::3], view[1::3], view[2::3]
    n = len(main) // 3
    out = array("q")
    pos = 0
    for t in delta:  # sorted; C bisects + one block copy per entry
        a, b, c = t
        lo = bisect_left(v0, a, pos, n)
        hi = bisect_left(v0, a + 1, lo, n)
        lo = bisect_left(v1, b, lo, hi)
        hi = bisect_left(v1, b + 1, lo, hi)
        at = bisect_left(v2, c, lo, hi)
        _copy_block(out, view, pos, at)
        out.extend(t)
        pos = at
    _copy_block(out, view, pos, n)
    return out


def _merge_runs_numpy(main: Buffer, delta: Sequence[EncodedTriple],
                      dead: Set[EncodedTriple]) -> array:
    if dead:  # tombstones are the rare path: reuse the block excision
        main = _excise_dead_python(main, dead)
    rows = _as_numpy(main).reshape(-1, 3)
    if delta:
        extra = _np.array(delta, dtype=_np.int64).reshape(-1, 3)
        rows = _np.concatenate([rows, extra])
        order = _np.lexsort((rows[:, 2], rows[:, 1], rows[:, 0]))
        rows = rows[order]
    out = array("q")
    out.frombytes(_np.ascontiguousarray(rows, dtype=_np.int64).tobytes())
    return out


def merge_runs(main: Buffer, delta: Sequence[EncodedTriple],
               dead: Set[EncodedTriple]) -> array:
    """One order's compacted main run: ``sorted(main - dead + delta)``.

    ``delta`` is sorted and disjoint from ``main``; ``dead`` is a
    subset of ``main`` (the invariants :class:`repro.rdf.columnar.
    _OrderRuns` maintains).  Always returns a fresh ``array('q')`` —
    mmap-backed memoryview inputs materialize here, exactly as the
    scalar merge always did.
    """
    if _mode == "python":
        return _merge_runs_python(main, delta, dead)
    if _mode == "numpy":
        return _merge_runs_numpy(main, delta, dead)
    return _merge_runs_scalar(main, delta, dead)
