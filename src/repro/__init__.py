"""repro: Reasoning on Web Data — Algorithms and Performance.

A from-scratch reproduction of the RDF reasoning platform surveyed in
Bursztyn, Goasdoue, Manolescu, Roatis, "Reasoning on Web Data:
Algorithms and Performance" (ICDE 2015): saturation-based and
reformulation-based query answering over RDF graphs with RDFS
semantics, incremental saturation maintenance (DRed and counting),
a SPARQL BGP engine, a Datalog substrate with magic sets, LUBM-style
workloads, and the saturation-threshold analysis of the paper's
Figure 3.

Quickstart::

    from repro import RDFDatabase, Strategy

    db = RDFDatabase(strategy=Strategy.REFORMULATION)
    db.load_turtle('''
        @prefix ex: <http://example.org/> .
        ex:hasFriend rdfs:domain ex:Person .
        ex:Anne ex:hasFriend ex:Marie .
    ''')
    for row in db.query("SELECT ?x WHERE { ?x a <http://example.org/Person> }"):
        print(row)
"""

from .db import (QueryLog, RDFDatabase, Strategy, StrategyAdvice,
                 UnsupportedGraphError, WorkloadProfile, recommend_strategy)
from .obs import (MetricsRegistry, Tracer, get_metrics, get_tracer,
                  measurement_window, observability_report, render_report,
                  report_to_json, span, write_report)
from .rdf import (BlankNode, Graph, Literal, Namespace, NamespaceManager,
                  RDF, RDFS, OWL, XSD, Triple, TriplePattern, URI, Variable,
                  graph_from_ntriples, graph_from_turtle, parse_ntriples,
                  parse_turtle, serialize_ntriples, serialize_turtle)
from .reasoning import (CountingReasoner, CyclicSchemaError, DRedReasoner,
                        RDFS_DEFAULT, RDFS_FULL, RDFS_PLUS, RHO_DF,
                        Reformulation, Rule, RuleSet, SaturationResult,
                        entails, get_ruleset, reformulate, saturate,
                        saturation_of)
from .schema import Schema, validate_schema
from .sparql import (BGPQuery, ResultSet, evaluate, evaluate_reformulation,
                     parse_query)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # rdf
    "URI", "Literal", "BlankNode", "Variable", "Triple", "TriplePattern",
    "Graph", "Namespace", "NamespaceManager", "RDF", "RDFS", "XSD", "OWL",
    "parse_turtle", "graph_from_turtle", "serialize_turtle",
    "parse_ntriples", "graph_from_ntriples", "serialize_ntriples",
    # schema
    "Schema", "validate_schema",
    # reasoning
    "Rule", "RuleSet", "RHO_DF", "RDFS_DEFAULT", "RDFS_FULL", "RDFS_PLUS",
    "get_ruleset", "saturate", "saturation_of", "SaturationResult",
    "entails", "DRedReasoner", "CountingReasoner", "CyclicSchemaError",
    "Reformulation", "reformulate",
    # sparql
    "BGPQuery", "ResultSet", "parse_query", "evaluate",
    "evaluate_reformulation",
    # db
    "RDFDatabase", "Strategy", "UnsupportedGraphError", "QueryLog",
    "WorkloadProfile", "StrategyAdvice", "recommend_strategy",
    # obs
    "MetricsRegistry", "Tracer", "get_metrics", "get_tracer", "span",
    "measurement_window", "observability_report", "report_to_json",
    "render_report", "write_report",
]
