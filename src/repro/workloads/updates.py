"""Update workloads: the four update kinds of Figure 3.

Figure 3 reports, next to the saturation threshold, thresholds for an
*instance insertion*, *instance deletion*, *schema insertion* and
*schema deletion*.  This module generates those update batches against
a given graph, deterministically (seeded), so the maintenance
benchmarks replay identical update streams across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import URI
from ..rdf.triples import Triple
from ..schema import Schema, is_schema_triple

__all__ = ["UpdateBatch", "instance_insertions", "instance_deletions",
           "schema_insertions", "schema_deletions"]


@dataclass(frozen=True)
class UpdateBatch:
    """A named batch of triples to insert or delete."""

    kind: str                 # "instance-insert" | "instance-delete" | ...
    triples: tuple

    def __len__(self) -> int:
        return len(self.triples)


def _instance_triples(graph: Graph) -> List[Triple]:
    return [t for t in graph if not is_schema_triple(t)]


def _schema_triples(graph: Graph) -> List[Triple]:
    return [t for t in graph if is_schema_triple(t)]


def instance_insertions(graph: Graph, count: int, seed: int = 0) -> UpdateBatch:
    """Fresh instance triples shaped like the graph's existing data.

    New individuals are attached through existing properties and typed
    with existing classes, so the insertions exercise the same rules as
    the original data did.
    """
    rng = Random(seed)
    schema = Schema.from_graph(graph)
    classes = sorted((c for c in schema.classes() if isinstance(c, URI)),
                     key=lambda t: t.value)
    properties = sorted((p for p in schema.properties() if isinstance(p, URI)),
                        key=lambda t: t.value)
    existing = _instance_triples(graph)
    subjects = sorted({t.s for t in existing if isinstance(t.s, URI)},
                      key=lambda t: t.value)
    triples: List[Triple] = []
    for i in range(count):
        fresh = URI(f"http://repro.example.org/new#n{seed}_{i}")
        choice = rng.random()
        if choice < 0.4 and classes:
            triples.append(Triple(fresh, RDF.type, rng.choice(classes)))
        elif choice < 0.8 and properties and subjects:
            triples.append(Triple(fresh, rng.choice(properties),
                                  rng.choice(subjects)))
        elif subjects and properties:
            triples.append(Triple(rng.choice(subjects),
                                  rng.choice(properties), fresh))
        elif classes:
            triples.append(Triple(fresh, RDF.type, rng.choice(classes)))
    return UpdateBatch("instance-insert", tuple(triples))


def instance_deletions(graph: Graph, count: int, seed: int = 0) -> UpdateBatch:
    """A sample of the graph's existing explicit instance triples."""
    rng = Random(seed)
    pool = sorted(_instance_triples(graph))
    sample = rng.sample(pool, min(count, len(pool)))
    return UpdateBatch("instance-delete", tuple(sample))


def schema_insertions(graph: Graph, count: int, seed: int = 0) -> UpdateBatch:
    """New constraints over the existing vocabulary (acyclic by
    construction: new subclass/subproperty edges follow the URI order,
    matching the acyclicity of well-designed ontologies)."""
    rng = Random(seed)
    schema = Schema.from_graph(graph)
    classes = sorted((c for c in schema.classes() if isinstance(c, URI)),
                     key=lambda t: t.value)
    properties = sorted((p for p in schema.properties() if isinstance(p, URI)),
                        key=lambda t: t.value)
    triples: List[Triple] = []
    attempts = 0
    while len(triples) < count and attempts < count * 20:
        attempts += 1
        choice = rng.random()
        if choice < 0.4 and len(classes) >= 2:
            a, b = sorted(rng.sample(range(len(classes)), 2))
            candidate = Triple(classes[a], RDFS.subClassOf, classes[b])
        elif choice < 0.6 and len(properties) >= 2:
            a, b = sorted(rng.sample(range(len(properties)), 2))
            candidate = Triple(properties[a], RDFS.subPropertyOf, properties[b])
        elif choice < 0.8 and properties and classes:
            candidate = Triple(rng.choice(properties), RDFS.domain,
                               rng.choice(classes))
        elif properties and classes:
            candidate = Triple(rng.choice(properties), RDFS.range,
                               rng.choice(classes))
        else:
            break
        if candidate not in graph and candidate not in triples:
            triples.append(candidate)
    return UpdateBatch("schema-insert", tuple(triples))


def schema_deletions(graph: Graph, count: int, seed: int = 0) -> UpdateBatch:
    """A sample of the graph's existing explicit schema triples."""
    rng = Random(seed)
    pool = sorted(_schema_triples(graph))
    sample = rng.sample(pool, min(count, len(pool)))
    return UpdateBatch("schema-delete", tuple(sample))
