"""A deterministic LUBM-style university workload generator.

The experiments behind the paper's Figure 3 (from [12]) ran on
LUBM-derived and DBpedia datasets.  Neither is shipped here, so this
module generates a structurally faithful substitute: the classic
university domain with

* a class hierarchy 4–5 levels deep (FullProfessor ⊑ Professor ⊑
  Faculty ⊑ Employee ⊑ Person, …),
* a property hierarchy (headOf ⊑ worksFor ⊑ memberOf;
  doctoralDegreeFrom ⊑ degreeFrom, …) with domains and ranges,
* instance data that — like the original LUBM — asserts only the
  *most specific* class and property for each resource, so that almost
  every query answer depends on reasoning.

Generation is seeded and deterministic: the same
:class:`LUBMConfig` always produces the identical graph, making
benchmark runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace, RDF, RDFS, XSD
from ..rdf.terms import Literal, URI
from ..rdf.triples import Triple

__all__ = ["UNIV", "LUBMConfig", "lubm_schema", "generate_lubm",
           "lubm_schema_graph"]

#: Namespace of the university vocabulary and generated individuals.
UNIV = Namespace("http://repro.example.org/univ#")

# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------

_SUBCLASS_EDGES: Tuple[Tuple[str, str], ...] = (
    # people
    ("Employee", "Person"),
    ("Faculty", "Employee"),
    ("Professor", "Faculty"),
    ("FullProfessor", "Professor"),
    ("AssociateProfessor", "Professor"),
    ("AssistantProfessor", "Professor"),
    ("VisitingProfessor", "Professor"),
    ("Chair", "Professor"),
    ("Dean", "Professor"),
    ("Lecturer", "Faculty"),
    ("PostDoc", "Faculty"),
    ("AdministrativeStaff", "Employee"),
    ("ClericalStaff", "AdministrativeStaff"),
    ("SystemsStaff", "AdministrativeStaff"),
    ("Student", "Person"),
    ("UndergraduateStudent", "Student"),
    ("GraduateStudent", "Student"),
    ("ResearchAssistant", "Student"),
    ("TeachingAssistant", "Person"),
    # organizations
    ("University", "Organization"),
    ("Department", "Organization"),
    ("ResearchGroup", "Organization"),
    ("Institute", "Organization"),
    ("College", "Organization"),
    # work
    ("Course", "Work"),
    ("GraduateCourse", "Course"),
    ("Research", "Work"),
    # publications
    ("Article", "Publication"),
    ("ConferencePaper", "Article"),
    ("JournalArticle", "Article"),
    ("TechnicalReport", "Article"),
    ("Book", "Publication"),
    ("Software", "Publication"),
)

_SUBPROPERTY_EDGES: Tuple[Tuple[str, str], ...] = (
    ("worksFor", "memberOf"),
    ("headOf", "worksFor"),
    ("undergraduateDegreeFrom", "degreeFrom"),
    ("mastersDegreeFrom", "degreeFrom"),
    ("doctoralDegreeFrom", "degreeFrom"),
    ("teachingAssistantOf", "assistsWith"),
)

_DOMAINS: Tuple[Tuple[str, str], ...] = (
    ("memberOf", "Person"),
    ("degreeFrom", "Person"),
    ("advisor", "Person"),
    ("teacherOf", "Faculty"),
    ("takesCourse", "Student"),
    ("assistsWith", "Person"),
    ("publicationAuthor", "Publication"),
    ("subOrganizationOf", "Organization"),
    ("researchInterest", "Person"),
    ("name", "Person"),
    ("emailAddress", "Person"),
    ("age", "Person"),
)

_RANGES: Tuple[Tuple[str, str], ...] = (
    ("memberOf", "Organization"),
    ("degreeFrom", "University"),
    ("advisor", "Professor"),
    ("teacherOf", "Course"),
    ("takesCourse", "Course"),
    ("assistsWith", "Course"),
    ("publicationAuthor", "Person"),
    ("subOrganizationOf", "Organization"),
)


def lubm_schema() -> List[Triple]:
    """The RDFS schema triples of the university vocabulary."""
    triples: List[Triple] = []
    for sub, sup in _SUBCLASS_EDGES:
        triples.append(Triple(UNIV.term(sub), RDFS.subClassOf, UNIV.term(sup)))
    for sub, sup in _SUBPROPERTY_EDGES:
        triples.append(Triple(UNIV.term(sub), RDFS.subPropertyOf, UNIV.term(sup)))
    for prop, cls in _DOMAINS:
        triples.append(Triple(UNIV.term(prop), RDFS.domain, UNIV.term(cls)))
    for prop, cls in _RANGES:
        triples.append(Triple(UNIV.term(prop), RDFS.range, UNIV.term(cls)))
    return triples


def lubm_schema_graph() -> Graph:
    """The schema alone, as a graph."""
    graph = Graph()
    graph.namespaces.bind("univ", UNIV)
    graph.update(lubm_schema())
    return graph


# ----------------------------------------------------------------------
# instance generation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LUBMConfig:
    """Size knobs for the generator.

    With the defaults, one university yields roughly 6–7 thousand
    triples; scale via ``universities`` and ``departments``.
    """

    universities: int = 1
    departments: int = 3          # per university
    full_professors: int = 7      # per department, and so on:
    associate_professors: int = 6
    assistant_professors: int = 5
    lecturers: int = 4
    undergraduate_students: int = 60
    graduate_students: int = 18
    courses: int = 20
    graduate_courses: int = 8
    research_groups: int = 4
    publications_per_faculty: int = 3
    courses_per_student: int = 2
    seed: int = 20150413          # ICDE 2015's opening day

    def scaled(self, factor: float) -> "LUBMConfig":
        """A config with per-department population scaled by ``factor``."""
        def scale(n: int) -> int:
            return max(1, round(n * factor))

        return LUBMConfig(
            universities=self.universities,
            departments=self.departments,
            full_professors=scale(self.full_professors),
            associate_professors=scale(self.associate_professors),
            assistant_professors=scale(self.assistant_professors),
            lecturers=scale(self.lecturers),
            undergraduate_students=scale(self.undergraduate_students),
            graduate_students=scale(self.graduate_students),
            courses=scale(self.courses),
            graduate_courses=scale(self.graduate_courses),
            research_groups=scale(self.research_groups),
            publications_per_faculty=self.publications_per_faculty,
            courses_per_student=self.courses_per_student,
            seed=self.seed,
        )


def generate_lubm(config: LUBMConfig = LUBMConfig(),
                  include_schema: bool = True,
                  seed: Optional[int] = None) -> Graph:
    """Generate a university graph according to ``config``.

    Mirrors the original LUBM's reliance on reasoning: individuals are
    typed with their most specific class only, and organizational
    membership is asserted through the most specific property
    (``headOf`` for chairs, ``worksFor`` for other staff), leaving
    ``memberOf`` and the superclasses implicit.

    ``seed`` overrides ``config.seed``; a fixed (config, seed) pair
    always produces the byte-identical graph.
    """
    rng = Random(config.seed if seed is None else seed)
    graph = Graph()
    graph.namespaces.bind("univ", UNIV)
    if include_schema:
        graph.update(lubm_schema())

    for u in range(config.universities):
        university = UNIV.term(f"University{u}")
        graph.add(Triple(university, RDF.type, UNIV.University))
        for d in range(config.departments):
            _generate_department(graph, rng, config, university, u, d)
    return graph


def _generate_department(graph: Graph, rng: Random, config: LUBMConfig,
                         university: URI, u: int, d: int) -> None:
    prefix = f"u{u}d{d}"
    department = UNIV.term(f"Department{prefix}")
    graph.add(Triple(department, RDF.type, UNIV.Department))
    graph.add(Triple(department, UNIV.subOrganizationOf, university))

    faculty: List[URI] = []
    groups = [UNIV.term(f"ResearchGroup{prefix}g{i}")
              for i in range(config.research_groups)]
    for group in groups:
        graph.add(Triple(group, RDF.type, UNIV.ResearchGroup))
        graph.add(Triple(group, UNIV.subOrganizationOf, department))

    ranks = (
        ("FullProfessor", config.full_professors),
        ("AssociateProfessor", config.associate_professors),
        ("AssistantProfessor", config.assistant_professors),
        ("Lecturer", config.lecturers),
    )
    for rank, count in ranks:
        for i in range(count):
            person = UNIV.term(f"{rank}{prefix}n{i}")
            graph.add(Triple(person, RDF.type, UNIV.term(rank)))
            graph.add(Triple(person, UNIV.worksFor, department))
            graph.add(Triple(person, UNIV.name,
                             Literal(f"{rank} {prefix}-{i}")))
            graph.add(Triple(person, UNIV.doctoralDegreeFrom, university))
            faculty.append(person)

    # the department chair heads the department (headOf only — worksFor
    # and memberOf are left to reasoning)
    chair = UNIV.term(f"Chair{prefix}")
    graph.add(Triple(chair, RDF.type, UNIV.Chair))
    graph.add(Triple(chair, UNIV.headOf, department))
    faculty.append(chair)

    courses = [UNIV.term(f"Course{prefix}c{i}") for i in range(config.courses)]
    for course in courses:
        graph.add(Triple(course, RDF.type, UNIV.Course))
    graduate_courses = [UNIV.term(f"GraduateCourse{prefix}c{i}")
                        for i in range(config.graduate_courses)]
    for course in graduate_courses:
        graph.add(Triple(course, RDF.type, UNIV.GraduateCourse))
    all_courses = courses + graduate_courses

    for person in faculty:
        for course in rng.sample(all_courses,
                                 min(2, len(all_courses))):
            graph.add(Triple(person, UNIV.teacherOf, course))
        for i in range(config.publications_per_faculty):
            publication = UNIV.term(f"Publication{prefix}_{person.local_name}_{i}")
            kind = rng.choice(("ConferencePaper", "JournalArticle",
                               "TechnicalReport", "Book"))
            graph.add(Triple(publication, RDF.type, UNIV.term(kind)))
            graph.add(Triple(publication, UNIV.publicationAuthor, person))

    for i in range(config.undergraduate_students):
        student = UNIV.term(f"UndergraduateStudent{prefix}s{i}")
        graph.add(Triple(student, RDF.type, UNIV.UndergraduateStudent))
        # memberOf asserted directly for students (most specific known)
        graph.add(Triple(student, UNIV.memberOf, department))
        for course in rng.sample(courses,
                                 min(config.courses_per_student, len(courses))):
            graph.add(Triple(student, UNIV.takesCourse, course))
        if rng.random() < 0.2:
            graph.add(Triple(student, UNIV.age,
                             Literal(str(rng.randint(17, 24)),
                                     datatype=XSD.integer)))

    for i in range(config.graduate_students):
        student = UNIV.term(f"GraduateStudent{prefix}s{i}")
        graph.add(Triple(student, RDF.type, UNIV.GraduateStudent))
        graph.add(Triple(student, UNIV.memberOf, department))
        graph.add(Triple(student, UNIV.undergraduateDegreeFrom, university))
        graph.add(Triple(student, UNIV.advisor, rng.choice(faculty)))
        for course in rng.sample(graduate_courses,
                                 min(config.courses_per_student,
                                     len(graduate_courses))):
            graph.add(Triple(student, UNIV.takesCourse, course))
        if rng.random() < 0.3:
            assisted = rng.choice(all_courses)
            graph.add(Triple(student, UNIV.teachingAssistantOf, assisted))
