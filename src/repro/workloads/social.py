"""A DBpedia-like "social encyclopedia" workload generator.

The EDBT'13 experiments behind Figure 3 used LUBM *and* DBpedia, and
the two stress reasoning differently:

* LUBM (see :mod:`repro.workloads.lubm`): a *deep* class hierarchy,
  reasoning dominated by rdfs9 chains;
* DBpedia: a *wide, shallow* schema — hundreds of sibling classes
  under a handful of roots, many datatype-ish properties with domains,
  and a hub-shaped (power-law) link structure.

This module generates the second shape, seeded and deterministic:
``width`` sibling entity classes under 4 roots, properties whose
domains/ranges point at the roots, and a Zipf-ish popularity skew on
link targets (hubs), mirroring encyclopedic link graphs.

Benchmarks use it to show that the saturation/reformulation trade-off
shifts with schema *shape*, not just size: shallow hierarchies mean
small subclass reformulations but large domain/range fans.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace, RDF, RDFS, XSD
from ..rdf.terms import Literal, URI
from ..rdf.triples import Triple

__all__ = ["SOCIAL", "SocialConfig", "generate_social", "social_schema"]

#: Namespace of the encyclopedia vocabulary and entities.
SOCIAL = Namespace("http://repro.example.org/social#")

_ROOTS = ("Agent", "Place", "Work", "Event")


@dataclass(frozen=True)
class SocialConfig:
    """Size knobs; defaults give ~4k triples."""

    width: int = 40            # entity classes per root
    entities: int = 600
    links: int = 1500          # entity-to-entity edges
    attributes: int = 800      # literal-valued edges
    link_properties: int = 12
    attribute_properties: int = 8
    hub_skew: float = 3.0      # >1: more skew towards popular targets
    seed: int = 4242


def social_schema(config: SocialConfig = SocialConfig()) -> List[Triple]:
    """The wide, shallow schema: width x 4 sibling classes, properties
    with root-level domains/ranges, a thin subproperty layer."""
    triples: List[Triple] = []
    for root in _ROOTS:
        root_uri = SOCIAL.term(root)
        triples.append(Triple(root_uri, RDFS.subClassOf, SOCIAL.Entity))
        for i in range(config.width):
            triples.append(Triple(SOCIAL.term(f"{root}_{i}"),
                                  RDFS.subClassOf, root_uri))
    for i in range(config.link_properties):
        prop = SOCIAL.term(f"link{i}")
        domain_root = _ROOTS[i % len(_ROOTS)]
        range_root = _ROOTS[(i + 1) % len(_ROOTS)]
        triples.append(Triple(prop, RDFS.domain, SOCIAL.term(domain_root)))
        triples.append(Triple(prop, RDFS.range, SOCIAL.term(range_root)))
        if i % 3 == 0:
            # a thin subproperty layer: every third link specializes
            # the generic relatedTo
            triples.append(Triple(prop, RDFS.subPropertyOf, SOCIAL.relatedTo))
    for i in range(config.attribute_properties):
        prop = SOCIAL.term(f"attr{i}")
        triples.append(Triple(prop, RDFS.domain,
                              SOCIAL.term(_ROOTS[i % len(_ROOTS)])))
    return triples


def generate_social(config: SocialConfig = SocialConfig(),
                    include_schema: bool = True,
                    seed: Optional[int] = None) -> Graph:
    """Generate the encyclopedia graph.

    Entities are typed with one leaf class each; link targets follow a
    power-law-ish skew (early entities are hubs); attribute values are
    typed literals.  Deterministic for a fixed config; ``seed``
    overrides ``config.seed``.
    """
    rng = Random(config.seed if seed is None else seed)
    graph = Graph()
    graph.namespaces.bind("soc", SOCIAL)
    if include_schema:
        graph.update(social_schema(config))

    entities = [SOCIAL.term(f"e{i}") for i in range(config.entities)]
    leaf_classes = [SOCIAL.term(f"{root}_{i}")
                    for root in _ROOTS for i in range(config.width)]
    for entity in entities:
        graph.add(Triple(entity, RDF.type, rng.choice(leaf_classes)))

    def skewed_target() -> URI:
        # inverse-power sampling: index ~ U^skew scaled to the range,
        # so low indices (hubs) are picked disproportionately often
        position = rng.random() ** config.hub_skew
        return entities[int(position * (len(entities) - 1))]

    link_properties = [SOCIAL.term(f"link{i}")
                       for i in range(config.link_properties)]
    for __ in range(config.links):
        graph.add(Triple(rng.choice(entities), rng.choice(link_properties),
                         skewed_target()))

    attribute_properties = [SOCIAL.term(f"attr{i}")
                            for i in range(config.attribute_properties)]
    for __ in range(config.attributes):
        entity = rng.choice(entities)
        prop = rng.choice(attribute_properties)
        if rng.random() < 0.5:
            value = Literal(str(rng.randint(1, 2026)), datatype=XSD.integer)
        else:
            value = Literal(f"label-{rng.randint(0, 9999)}")
        graph.add(Triple(entity, prop, value))
    return graph
