"""Seeded random RDF graph / schema / query generators.

Used by the property-based tests (with hypothesis driving the
parameters) and by the ablation benchmarks to explore regimes the
structured LUBM workload does not reach: arbitrary hierarchy shapes,
optional cycles, extreme fan-outs, and queries with variables in class
and property positions.

Meta-schema graphs (constraints *about* the RDFS vocabulary) are never
generated: both the schema-aware saturation fast path and the
reformulation engine document them as out of fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional, Sequence

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace, RDF, RDFS
from ..rdf.terms import URI, Variable
from ..rdf.triples import Triple, TriplePattern
from ..sparql.ast import BGPQuery

__all__ = ["RandomGraphConfig", "random_graph", "random_query",
           "random_instance_triple", "RANDOM"]

#: Namespace for randomly generated vocabularies.
RANDOM = Namespace("http://repro.example.org/random#")


@dataclass(frozen=True)
class RandomGraphConfig:
    """Shape parameters for :func:`random_graph`."""

    classes: int = 8
    properties: int = 5
    individuals: int = 12
    schema_triples: int = 10
    instance_triples: int = 30
    allow_cycles: bool = False
    seed: int = 0


def _vocabulary(config: RandomGraphConfig):
    classes = [RANDOM.term(f"C{i}") for i in range(config.classes)]
    properties = [RANDOM.term(f"p{i}") for i in range(config.properties)]
    individuals = [RANDOM.term(f"i{i}") for i in range(config.individuals)]
    return classes, properties, individuals


def _random_schema_triple(rng: Random, classes: Sequence[URI],
                          properties: Sequence[URI],
                          allow_cycles: bool) -> Triple:
    kind = rng.random()
    if kind < 0.4 and len(classes) >= 2:
        a, b = rng.sample(range(len(classes)), 2)
        if not allow_cycles and a > b:
            a, b = b, a  # edges only point "up": acyclic by construction
        return Triple(classes[a], RDFS.subClassOf, classes[b])
    if kind < 0.6 and len(properties) >= 2:
        a, b = rng.sample(range(len(properties)), 2)
        if not allow_cycles and a > b:
            a, b = b, a
        return Triple(properties[a], RDFS.subPropertyOf, properties[b])
    if kind < 0.8:
        return Triple(rng.choice(properties), RDFS.domain, rng.choice(classes))
    return Triple(rng.choice(properties), RDFS.range, rng.choice(classes))


def random_instance_triple(rng: Random, classes: Sequence[URI],
                           properties: Sequence[URI],
                           individuals: Sequence[URI]) -> Triple:
    """One random instance-level triple (a typing or a property edge)."""
    if rng.random() < 0.45:
        return Triple(rng.choice(individuals), RDF.type, rng.choice(classes))
    return Triple(rng.choice(individuals), rng.choice(properties),
                  rng.choice(individuals))


def random_graph(config: RandomGraphConfig = RandomGraphConfig(),
                 seed: Optional[int] = None) -> Graph:
    """A random graph with the requested schema/instance mix.

    ``seed`` overrides ``config.seed``; the same (config, seed) pair
    always produces the byte-identical graph.
    """
    rng = Random(config.seed if seed is None else seed)
    classes, properties, individuals = _vocabulary(config)
    graph = Graph()
    graph.namespaces.bind("rnd", RANDOM)
    for __ in range(config.schema_triples):
        graph.add(_random_schema_triple(rng, classes, properties,
                                        config.allow_cycles))
    for __ in range(config.instance_triples):
        graph.add(random_instance_triple(rng, classes, properties, individuals))
    return graph


def random_query(config: RandomGraphConfig, seed: int,
                 max_atoms: int = 3,
                 allow_variable_predicates: bool = True) -> BGPQuery:
    """A random BGP query over the same vocabulary as ``config``.

    Atom shapes cover the reformulation engine's whole input space:
    constant-class typing atoms, variable-class typing atoms, constant
    and (optionally) variable properties, constant or variable
    subjects/objects.
    """
    rng = Random(seed)
    classes, properties, individuals = _vocabulary(config)
    variables = [Variable("x"), Variable("y"), Variable("z")]

    def subject():
        return rng.choice(variables + individuals[:3])

    def object_():
        return rng.choice(variables + individuals[:3])

    patterns: List[TriplePattern] = []
    for __ in range(rng.randint(1, max_atoms)):
        shape = rng.random()
        if shape < 0.35:
            patterns.append(TriplePattern(subject(), RDF.type,
                                          rng.choice(classes)))
        elif shape < 0.45:
            patterns.append(TriplePattern(subject(), RDF.type,
                                          rng.choice(variables)))
        elif shape < 0.85 or not allow_variable_predicates:
            patterns.append(TriplePattern(subject(), rng.choice(properties),
                                          object_()))
        else:
            patterns.append(TriplePattern(subject(), rng.choice(variables),
                                          object_()))
    return BGPQuery(patterns, distinct=True)
