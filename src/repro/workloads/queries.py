"""The benchmark query workload Q1–Q10 over the university vocabulary.

Mirrors the design of the workload behind the paper's Figure 3: the
queries deliberately span several orders of magnitude of
*reformulation size* — from a leaf class with a UCQ of 1 (Q5) to the
root of the Person hierarchy whose rewriting unions dozens of
conjuncts (Q1) — because that spread is exactly what makes the
saturation/reformulation thresholds spread over orders of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..rdf.namespaces import RDF
from ..rdf.terms import Variable as V
from ..rdf.triples import TriplePattern as TP
from ..sparql.ast import BGPQuery
from .lubm import UNIV

__all__ = ["WORKLOAD_QUERIES", "workload_query", "query_ids"]


def _q(*patterns: TP, select: Tuple[V, ...] = ()) -> BGPQuery:
    return BGPQuery(patterns, select or None, distinct=True)


X, Y, Z, U, P = V("x"), V("y"), V("z"), V("u"), V("p")

#: Ordered mapping query-id -> (description, query).
WORKLOAD_QUERIES: Dict[str, Tuple[str, BGPQuery]] = {
    "Q1": (
        "all persons — root of the deepest class hierarchy; the widest "
        "reformulation (every subclass + every domain/range reaching Person)",
        _q(TP(X, RDF.type, UNIV.Person)),
    ),
    "Q2": (
        "all students — mid-hierarchy class",
        _q(TP(X, RDF.type, UNIV.Student)),
    ),
    "Q3": (
        "professors and the courses they teach — class + join",
        _q(TP(X, RDF.type, UNIV.Professor), TP(X, UNIV.teacherOf, Y)),
    ),
    "Q4": (
        "organization membership — subproperty closure of memberOf",
        _q(TP(X, UNIV.memberOf, Y)),
    ),
    "Q5": (
        "full professors — leaf class, reformulation of size 1",
        _q(TP(X, RDF.type, UNIV.FullProfessor)),
    ),
    "Q6": (
        "degrees — subproperty fan of degreeFrom",
        _q(TP(X, UNIV.degreeFrom, U)),
    ),
    "Q7": (
        "advised persons and their professor advisors — join with a "
        "reformulated class atom",
        _q(TP(X, UNIV.advisor, Y), TP(Y, RDF.type, UNIV.Professor)),
    ),
    "Q8": (
        "all organizations — class hierarchy + range typing",
        _q(TP(X, RDF.type, UNIV.Organization)),
    ),
    "Q9": (
        "students of a department of the university they got their "
        "undergraduate degree from (LUBM Q2 shape — triangle join)",
        _q(TP(X, UNIV.memberOf, Y),
           TP(Y, UNIV.subOrganizationOf, U),
           TP(X, UNIV.undergraduateDegreeFrom, U)),
    ),
    "Q10": (
        "faculty and their employers — two reformulated atoms joined",
        _q(TP(X, RDF.type, UNIV.Faculty), TP(X, UNIV.worksFor, Y)),
    ),
}


def query_ids() -> List[str]:
    """The workload's query identifiers, in order."""
    return list(WORKLOAD_QUERIES)


def workload_query(query_id: str) -> BGPQuery:
    """Look up a workload query by id (``"Q1"`` … ``"Q10"``)."""
    try:
        return WORKLOAD_QUERIES[query_id][1]
    except KeyError:
        raise KeyError(f"unknown workload query {query_id!r}; "
                       f"known: {', '.join(WORKLOAD_QUERIES)}") from None
