"""Workload generators: LUBM-style data, queries Q1–Q10, random graphs
and the four update kinds of Figure 3."""

from .lubm import (LUBMConfig, UNIV, generate_lubm, lubm_schema,
                   lubm_schema_graph)
from .queries import WORKLOAD_QUERIES, query_ids, workload_query
from .social import SOCIAL, SocialConfig, generate_social, social_schema
from .random_graph import (RANDOM, RandomGraphConfig, random_graph,
                           random_instance_triple, random_query)
from .updates import (UpdateBatch, instance_deletions, instance_insertions,
                      schema_deletions, schema_insertions)

__all__ = [
    "LUBMConfig", "UNIV", "generate_lubm", "lubm_schema", "lubm_schema_graph",
    "WORKLOAD_QUERIES", "workload_query", "query_ids",
    "RandomGraphConfig", "RANDOM", "random_graph", "random_query",
    "SOCIAL", "SocialConfig", "generate_social", "social_schema",
    "random_instance_triple",
    "UpdateBatch", "instance_insertions", "instance_deletions",
    "schema_insertions", "schema_deletions",
]
