"""Dictionary encoding of RDF terms.

Production RDF stores (RDF-3X, Hexastore, OWLIM — all cited in
Section II-C) never index raw strings: every term is mapped once to a
dense integer identifier and all triples, indexes and join processing
operate on integers.  This module provides that mapping.

Identifiers are dense, start at 0 and are never reused, so they can
double as array offsets in statistics structures.

Allocation is thread-safe: the serving layer runs concurrent readers,
and although readers go through :meth:`lookup` (never allocating), the
unlocked check-then-allocate of a naive :meth:`encode` could hand two
threads the same identifier for different terms and silently break
the bijection.  Reads stay lock-free — CPython list/dict reads are
atomic, identifiers are published only after the term is appended,
and allocated entries are never mutated.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from .terms import Term

__all__ = ["TermDictionary"]


class TermDictionary:
    """A bijective mapping between :class:`Term` objects and dense ints."""

    __slots__ = ("_term_to_id", "_id_to_term", "_lock")

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, term: Term) -> int:
        """Return the identifier for ``term``, allocating one if new."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            with self._lock:
                # double-checked: another thread may have allocated it
                # between the lock-free probe and lock acquisition
                term_id = self._term_to_id.get(term)
                if term_id is None:
                    term_id = len(self._id_to_term)
                    self._id_to_term.append(term)
                    self._term_to_id[term] = term_id
        return term_id

    def lookup(self, term: Term) -> Optional[int]:
        """Return the identifier for ``term`` or ``None`` if absent.

        Unlike :meth:`encode` this never allocates — pattern matching
        uses it so that a query mentioning an unknown constant yields an
        empty result instead of polluting the dictionary.
        """
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term for an identifier previously allocated."""
        try:
            return self._id_to_term[term_id]
        except IndexError:
            raise KeyError(f"unknown term id: {term_id}") from None

    def terms(self) -> Iterator[Term]:
        """Iterate all interned terms in allocation order."""
        return iter(self._id_to_term)

    def decode_table(self) -> List[Term]:
        """The id-indexed term table, for bulk decoding loops.

        Treat as read-only: the table is append-only and entries are
        never mutated, so indexing it directly is exactly
        :meth:`decode` without the per-call method dispatch — the
        block projection path decodes thousands of values per batch.
        """
        return self._id_to_term

    def copy(self) -> "TermDictionary":
        clone = TermDictionary()
        with self._lock:
            clone._term_to_id = dict(self._term_to_id)
            clone._id_to_term = list(self._id_to_term)
        return clone
