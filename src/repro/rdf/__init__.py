"""RDF substrate: terms, triples, namespaces, storage and I/O.

This package implements the data model of Section II-A of the paper:
well-formed RDF triples over URIs, literals and blank nodes, stored in
a dictionary-encoded, hash-indexed in-memory graph, with N-Triples and
Turtle-subset I/O.
"""

from .columnar import ColumnarTripleIndex
from .dictionary import TermDictionary
from .graph import BACKENDS, Graph
from .index import ALL_ORDERS, DEFAULT_ORDERS, TripleIndex
from .isomorphism import (blank_node_bijection, canonical_signatures,
                          is_lean, isomorphic)
from .namespaces import (DEFAULT_PREFIXES, NamespaceManager, Namespace, OWL,
                         RDF, RDFS, REPRO, XSD)
from .ntriples import (NTriplesError, graph_from_ntriples, parse_ntriples,
                       parse_ntriples_line, serialize_ntriples)
from .terms import (BlankNode, Literal, PatternTerm, RDFTerm, Term, URI,
                    Variable, fresh_blank, fresh_variable)
from .triples import Substitution, Triple, TriplePattern
from .turtle import TurtleError, graph_from_turtle, parse_turtle, serialize_turtle

__all__ = [
    "BlankNode", "Literal", "PatternTerm", "RDFTerm", "Term", "URI",
    "Variable", "fresh_blank", "fresh_variable",
    "Substitution", "Triple", "TriplePattern",
    "Namespace", "NamespaceManager", "DEFAULT_PREFIXES",
    "RDF", "RDFS", "XSD", "OWL", "REPRO",
    "TermDictionary", "TripleIndex", "ColumnarTripleIndex",
    "ALL_ORDERS", "DEFAULT_ORDERS", "BACKENDS",
    "Graph",
    "isomorphic", "blank_node_bijection", "canonical_signatures", "is_lean",
    "NTriplesError", "parse_ntriples", "parse_ntriples_line",
    "graph_from_ntriples", "serialize_ntriples",
    "TurtleError", "parse_turtle", "graph_from_turtle", "serialize_turtle",
]
