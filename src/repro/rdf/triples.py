"""Triples and triple patterns.

A triple ``s p o`` states that subject ``s`` has property ``p`` with
value ``o`` (Section II-A).  Well-formedness follows the RDF standard:

* subject: URI or blank node;
* property: URI;
* object: URI, blank node, or literal.

A :class:`TriplePattern` generalizes a triple by allowing variables in
any position (SPARQL BGPs; the paper's RDF fragment also allows blank
nodes in queries, treated as non-distinguished variables).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import BlankNode, Literal, PatternTerm, RDFTerm, Term, URI, Variable

__all__ = ["Triple", "TriplePattern", "Substitution"]

#: A substitution maps variables to pattern terms (or constants).
Substitution = Dict[Variable, PatternTerm]


class Triple:
    """An immutable well-formed RDF triple ``s p o``."""

    __slots__ = ("s", "p", "o", "_hash")

    def __init__(self, s: RDFTerm, p: URI, o: RDFTerm):
        if not isinstance(s, (URI, BlankNode)):
            raise TypeError(f"triple subject must be a URI or blank node, got {s!r}")
        if not isinstance(p, URI):
            raise TypeError(f"triple property must be a URI, got {p!r}")
        if not isinstance(o, (URI, BlankNode, Literal)):
            raise TypeError(f"triple object must be a URI, blank node or literal, got {o!r}")
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "o", o)
        object.__setattr__(self, "_hash", hash((s, p, o)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Triple is immutable")

    def __reduce__(self):
        # The __setattr__ guard breaks default slot unpickling; rebuild
        # through the constructor (terms memoize, so this stays cheap).
        return (Triple, (self.s, self.p, self.o))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Triple)
            and other.s == self.s
            and other.p == self.p
            and other.o == self.o
        )

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[RDFTerm]:
        return iter((self.s, self.p, self.o))

    def __repr__(self) -> str:
        return f"Triple({self.s!r}, {self.p!r}, {self.o!r})"

    def __lt__(self, other: "Triple") -> bool:
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        return (self.s.sort_key(), self.p.sort_key(), self.o.sort_key())

    def n3(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."

    def as_tuple(self) -> Tuple[RDFTerm, URI, RDFTerm]:
        return (self.s, self.p, self.o)

    def to_pattern(self) -> "TriplePattern":
        return TriplePattern(self.s, self.p, self.o)


class TriplePattern:
    """A triple where any position may hold a variable.

    Patterns are the building block of BGP queries and of the
    reformulation engine, which rewrites patterns into unions of
    patterns w.r.t. the RDFS constraints.
    """

    __slots__ = ("s", "p", "o", "_hash")

    def __init__(self, s: PatternTerm, p: PatternTerm, o: PatternTerm):
        if not isinstance(s, Term) or isinstance(s, Literal):
            raise TypeError(f"pattern subject must be URI/blank/variable, got {s!r}")
        if not isinstance(p, (URI, Variable, BlankNode)):
            raise TypeError(f"pattern property must be URI/blank/variable, got {p!r}")
        if not isinstance(o, Term):
            raise TypeError(f"pattern object must be a term, got {o!r}")
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "o", o)
        object.__setattr__(self, "_hash", hash((s, p, o)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("TriplePattern is immutable")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TriplePattern)
            and other.s == self.s
            and other.p == self.p
            and other.o == self.o
        )

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[PatternTerm]:
        return iter((self.s, self.p, self.o))

    def __repr__(self) -> str:
        return f"TriplePattern({self.s!r}, {self.p!r}, {self.o!r})"

    def __lt__(self, other: "TriplePattern") -> bool:
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        return (self.s.sort_key(), self.p.sort_key(), self.o.sort_key())

    def n3(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."

    def variables(self) -> frozenset:
        """The set of variables occurring in this pattern."""
        return frozenset(t for t in self if isinstance(t, Variable))

    def is_ground(self) -> bool:
        """True when the pattern contains no variables (it is a triple)."""
        return not any(isinstance(t, Variable) for t in self)

    def to_triple(self) -> Triple:
        """Convert a ground pattern back to a triple."""
        if not self.is_ground():
            raise ValueError(f"pattern is not ground: {self!r}")
        return Triple(self.s, self.p, self.o)  # type: ignore[arg-type]

    def substitute(self, binding: Substitution) -> "TriplePattern":
        """Apply a variable binding, returning the instantiated pattern."""

        def walk(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Variable):
                return binding.get(term, term)
            return term

        return TriplePattern(walk(self.s), walk(self.p), walk(self.o))

    def matches(self, triple: Triple,
                binding: "Optional[Substitution]" = None) -> "Optional[Substitution]":
        """Match this pattern against a concrete triple.

        Returns the extended substitution on success, ``None`` on
        failure.  The input ``binding`` is not mutated.
        """
        result: Substitution = dict(binding) if binding else {}
        for pattern_term, triple_term in zip(self, triple):
            if isinstance(pattern_term, Variable):
                bound = result.get(pattern_term)
                if bound is None:
                    result[pattern_term] = triple_term
                elif bound != triple_term:
                    return None
            elif pattern_term != triple_term:
                return None
        return result

    def rename(self, mapping: "Dict[Variable, Variable]") -> "TriplePattern":
        """Rename variables according to ``mapping`` (missing ones kept)."""

        def walk(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Variable):
                return mapping.get(term, term)
            return term

        return TriplePattern(walk(self.s), walk(self.p), walk(self.o))
