"""The RDF graph: a mutable set of well-formed triples.

An RDF graph is a set of triples ``s p o`` (Section II-A).  This class
is the substrate every other layer builds on: the saturation engine
reads and extends it, the reformulation engine reads its schema-level
triples, and the SPARQL evaluator matches patterns against it.

Internally the graph dictionary-encodes terms (see
:mod:`repro.rdf.dictionary`) and maintains hash indexes over the
encoded triples (see :mod:`repro.rdf.index`); the public API speaks
:class:`~repro.rdf.terms.Term` and :class:`~repro.rdf.triples.Triple`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .columnar import ColumnarTripleIndex
from .dictionary import TermDictionary
from .index import DEFAULT_ORDERS, TripleIndex
from .namespaces import NamespaceManager
from .terms import BlankNode, PatternTerm, RDFTerm, Term, URI, Variable
from .triples import Substitution, Triple, TriplePattern

__all__ = ["Graph", "BACKENDS"]

#: Selectable index layouts: ``"hash"`` (nested hash maps, the
#: default) and ``"columnar"`` (sorted runs; see repro.rdf.columnar).
BACKENDS: Tuple[str, ...] = ("hash", "columnar")

AnyIndex = Union[TripleIndex, ColumnarTripleIndex]


class Graph:
    """A mutable in-memory RDF graph with indexed pattern matching.

    >>> from repro.rdf import Graph, URI
    >>> from repro.rdf.namespaces import RDF, REPRO as EX
    >>> g = Graph()
    >>> _ = g.add(Triple(EX.Tom, RDF.type, EX.Cat))
    >>> len(g)
    1
    """

    __slots__ = ("_dictionary", "_index", "namespaces", "_version",
                 "_backend", "_derived")

    def __init__(self, triples: Optional[Iterable[Triple]] = None,
                 index_orders: Iterable[str] = DEFAULT_ORDERS,
                 namespaces: Optional[NamespaceManager] = None,
                 backend: str = "hash"):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {', '.join(BACKENDS)}")
        self._dictionary = TermDictionary()
        self._backend = backend
        self._index: AnyIndex = (
            ColumnarTripleIndex(index_orders) if backend == "columnar"
            else TripleIndex(index_orders))
        self.namespaces = namespaces if namespaces is not None else NamespaceManager()
        self._version = 0
        self._derived: Dict[str, Tuple[int, object]] = {}
        if triples is not None:
            self.update(triples)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Triple]:
        decode = self._dictionary.decode
        for s, p, o in self._index:
            yield Triple(decode(s), decode(p), decode(o))  # type: ignore[arg-type]

    def __contains__(self, triple: Triple) -> bool:
        encoded = self._encode_existing(triple)
        return encoded is not None and encoded in self._index

    def __eq__(self, other) -> bool:
        """Set equality of triples (blank nodes compared by label)."""
        if not isinstance(other, Graph):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __hash__(self):  # pragma: no cover - graphs are mutable
        raise TypeError("Graph is unhashable (mutable)")

    def __repr__(self) -> str:
        return f"<Graph with {len(self)} triples>"

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; return True iff it was not already present."""
        if not isinstance(triple, Triple):
            raise TypeError(f"expected a Triple, got {triple!r}")
        encode = self._dictionary.encode
        inserted = self._index.add((encode(triple.s), encode(triple.p), encode(triple.o)))
        if inserted:
            self._version += 1
        return inserted

    def add_spo(self, s: RDFTerm, p: URI, o: RDFTerm) -> bool:
        """Convenience: build and insert the triple ``s p o``."""
        return self.add(Triple(s, p, o))

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return the number actually new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Delete a triple; return True iff it was present."""
        encoded = self._encode_existing(triple)
        if encoded is None:
            return False
        removed = self._index.discard(encoded)
        if removed:
            self._version += 1
        return removed

    def remove_all(self, triples: Iterable[Triple]) -> int:
        """Delete many triples; return the number actually removed."""
        return sum(1 for t in triples if self.remove(t))

    def clear(self) -> None:
        self._index.clear()
        self._version += 1

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def triples(self, s: Optional[PatternTerm] = None, p: Optional[PatternTerm] = None,
                o: Optional[PatternTerm] = None) -> Iterator[Triple]:
        """Iterate triples matching the (s, p, o) pattern.

        ``None`` and :class:`Variable` both act as wildcards; constants
        must match exactly.  A constant the graph has never seen yields
        no results without touching the dictionary.
        """
        encoded = []
        for term in (s, p, o):
            if term is None or isinstance(term, Variable):
                encoded.append(None)
            else:
                term_id = self._dictionary.lookup(term)
                if term_id is None:
                    return
                encoded.append(term_id)
        decode = self._dictionary.decode
        for es, ep, eo in self._index.match(*encoded):
            yield Triple(decode(es), decode(ep), decode(eo))  # type: ignore[arg-type]

    def match(self, pattern: TriplePattern,
              binding: Optional[Substitution] = None) -> Iterator[Substitution]:
        """Iterate the substitutions under which ``pattern`` holds.

        Repeated variables inside the pattern and pre-bound variables in
        ``binding`` are honoured.  This is the scan primitive the BGP
        evaluator is built on.
        """
        try:
            concrete = pattern.substitute(binding) if binding else pattern
        except TypeError:
            # the binding placed e.g. a literal in subject position;
            # such a pattern can match no well-formed triple
            return
        base: Substitution = dict(binding) if binding else {}
        for triple in self.triples(concrete.s, concrete.p, concrete.o):
            extended = concrete.matches(triple, None)
            if extended is None:
                continue
            merged = dict(base)
            merged.update(extended)
            yield merged

    def count(self, s: Optional[PatternTerm] = None, p: Optional[PatternTerm] = None,
              o: Optional[PatternTerm] = None) -> int:
        """Exact number of triples matching the pattern (for statistics)."""
        encoded = []
        for term in (s, p, o):
            if term is None or isinstance(term, Variable):
                encoded.append(None)
            else:
                term_id = self._dictionary.lookup(term)
                if term_id is None:
                    return 0
                encoded.append(term_id)
        return self._index.count(*encoded)

    # ------------------------------------------------------------------
    # term-level views
    # ------------------------------------------------------------------

    def subjects(self, p: Optional[URI] = None, o: Optional[RDFTerm] = None) -> Set[RDFTerm]:
        return {t.s for t in self.triples(None, p, o)}

    def predicates(self) -> Set[URI]:
        return {t.p for t in self.triples()}

    def objects(self, s: Optional[RDFTerm] = None, p: Optional[URI] = None) -> Set[RDFTerm]:
        return {t.o for t in self.triples(s, p, None)}

    def value(self, s: Optional[RDFTerm] = None, p: Optional[URI] = None,
              o: Optional[RDFTerm] = None) -> Optional[RDFTerm]:
        """The unique term completing the two given positions, if any."""
        given = sum(term is not None for term in (s, p, o))
        if given != 2:
            raise ValueError("value() requires exactly two bound positions")
        for triple in self.triples(s, p, o):
            if s is None:
                return triple.s
            if p is None:
                return triple.p
            return triple.o
        return None

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped on every effective mutation.

        Layers that cache graph-derived structures (schema closure,
        statistics) use it for invalidation.
        """
        return self._version

    @property
    def backend(self) -> str:
        """The index layout this graph runs on: ``"hash"`` or
        ``"columnar"``."""
        return self._backend

    @property
    def index(self) -> AnyIndex:
        """The triple index over encoded identifiers (backend-specific).

        Read-only use by the join operators and saturation engines;
        mutating it directly bypasses version tracking.
        """
        return self._index

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary backing this graph's encoded triples."""
        return self._dictionary

    def cached_derived(self, key: str,
                       compute: Callable[["Graph"], object]) -> object:
        """A graph-derived value cached until the next mutation.

        ``compute(self)`` runs at most once per graph version per key
        *and uncontended reader* — concurrent readers may duplicate the
        computation, but never publish a stale value: the version is
        snapshotted *before* ``compute`` runs and published atomically
        with the value, so an entry written by a reader that raced a
        mutation is keyed to the pre-mutation version and simply misses
        afterwards.  Layers use this for pure-function-of-the-graph
        results they re-ask for on hot paths (e.g. the meta-schema
        check gating engine selection in ``saturate``).
        """
        version = self._version  # snapshot before compute (thread safety)
        entry = self._derived.get(key)
        if entry is not None and entry[0] == version:
            return entry[1]
        value = compute(self)
        self._derived[key] = (version, value)
        return value

    def peek_derived(self, key: str) -> Optional[object]:
        """The cached derived value for ``key`` regardless of version.

        Unlike :meth:`cached_derived` this never computes and may
        return a value cached at an older graph version — for layers
        that maintain a derived structure *incrementally* (the encoded
        graph view applies insert batches in place) and re-publish it
        with :meth:`store_derived`.
        """
        entry = self._derived.get(key)
        return entry[1] if entry is not None else None

    def store_derived(self, key: str, value: object) -> None:
        """Publish ``value`` as the derived result for ``key`` at the
        *current* graph version (see :meth:`peek_derived`)."""
        self._derived[key] = (self._version, value)

    def add_encoded(self, triples: Iterable[Tuple[int, int, int]]
                    ) -> List[Tuple[int, int, int]]:
        """Insert already-encoded triples in one batch.

        The set-at-a-time engines derive conclusions in identifier
        space; this lets them land a whole delta relation without a
        decode/re-encode round-trip.  Identifiers must come from this
        graph's dictionary.  Returns the triples actually new.
        """
        fresh = self._index.add_batch(triples)
        if fresh:
            self._version += 1
        return fresh

    def copy(self) -> "Graph":
        """An independent copy sharing no mutable state.

        Copies the dictionary and indexes structurally — no decode/
        re-encode per triple — so identifiers stay stable between a
        graph and its copies.
        """
        clone = Graph(index_orders=self._index.order_names,
                      namespaces=self.namespaces.copy(),
                      backend=self._backend)
        clone._dictionary = self._dictionary.copy()
        clone._index = self._index.copy()
        return clone

    def to_backend(self, backend: str) -> "Graph":
        """A copy of this graph on the given index backend."""
        if backend == self._backend:
            return self.copy()
        clone = Graph(index_orders=self._index.order_names,
                      namespaces=self.namespaces.copy(),
                      backend=backend)
        clone._dictionary = self._dictionary.copy()
        clone._index.add_batch(iter(self._index))
        return clone

    def terms(self) -> Iterator[Term]:
        """All interned terms (including ones no longer in any triple)."""
        return self._dictionary.terms()

    @classmethod
    def from_parts(cls, terms: Iterable[Term], index: AnyIndex,
                   backend: str,
                   namespaces: Optional[NamespaceManager] = None) -> "Graph":
        """Assemble a graph around a pre-built dictionary and index.

        The durable store reopens snapshots this way: ``terms`` is the
        persisted dictionary in identifier order (re-interning them
        reproduces the exact identifier assignment the index's encoded
        triples reference) and ``index`` wraps the mmap'd run files.
        The caller transfers ownership of ``index``.
        """
        graph = cls(index_orders=index.order_names, namespaces=namespaces,
                    backend=backend)
        for term in terms:
            graph._dictionary.encode(term)
        graph._index = index
        return graph

    def restore_version(self, version: int) -> None:
        """Reset the version counter to a persisted value.

        Recovery uses this so a reopened graph reports the same
        version as before the restart — version-keyed caches and the
        WAL's staleness test depend on the counter surviving, not
        restarting at the mutation count since open.  Derived-value
        caches are dropped: they were keyed to the old counter line.
        """
        self._version = version
        self._derived.clear()

    def skolemize(self) -> "Graph":
        """Return a copy with blank nodes replaced by fresh URIs.

        Useful when merging graphs from independent endpoints, where
        blank node labels must not collide (the multi-endpoint scenario
        of Section I).
        """
        from .namespaces import REPRO

        clone = Graph(index_orders=self._index.order_names,
                      namespaces=self.namespaces.copy(),
                      backend=self._backend)

        def skolem(term: RDFTerm) -> RDFTerm:
            if isinstance(term, BlankNode):
                return REPRO.term(f".well-known/genid/{term.label}")
            return term

        for triple in self:
            clone.add(Triple(skolem(triple.s), triple.p, skolem(triple.o)))
        return clone

    def _encode_existing(self, triple: Triple) -> Optional[Tuple[int, int, int]]:
        lookup = self._dictionary.lookup
        s = lookup(triple.s)
        if s is None:
            return None
        p = lookup(triple.p)
        if p is None:
            return None
        o = lookup(triple.o)
        if o is None:
            return None
        return (s, p, o)
