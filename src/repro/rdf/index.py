"""Triple indexes over dictionary-encoded triples.

Stores triples of integer identifiers in one nested-hash index per
*order* (a permutation of subject/property/object, as in Hexastore's
sextuple indexing [24]).  With hash-based nesting, the three orders
``spo``, ``pos`` and ``osp`` answer every one of the eight triple
pattern shapes with a direct lookup; fewer orders force scan-and-filter
fallbacks (benchmarked by the ABL-IDX ablation).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

__all__ = ["TripleIndex", "IndexOrder", "ALL_ORDERS", "DEFAULT_ORDERS",
           "ORDER_PERMUTATIONS", "invert_order"]

#: An index order: a permutation of the positions (0=s, 1=p, 2=o).
IndexOrder = Tuple[int, int, int]

#: Permutation for each of the six order names (shared with the
#: columnar layout in :mod:`repro.rdf.columnar`).
ORDER_PERMUTATIONS: Dict[str, IndexOrder] = {
    "spo": (0, 1, 2),
    "sop": (0, 2, 1),
    "pso": (1, 0, 2),
    "pos": (1, 2, 0),
    "osp": (2, 0, 1),
    "ops": (2, 1, 0),
}

_ORDER_BY_NAME = ORDER_PERMUTATIONS

ALL_ORDERS: Tuple[str, ...] = ("spo", "sop", "pso", "pos", "osp", "ops")
DEFAULT_ORDERS: Tuple[str, ...] = ("spo", "pos", "osp")

EncodedTriple = Tuple[int, int, int]
_Nested = Dict[int, Dict[int, Set[int]]]


class TripleIndex:
    """A set of encoded triples with one nested-hash index per order.

    ``orders`` selects the index layout; the default three-order layout
    answers every pattern shape without scanning.  All mutating methods
    keep every order consistent.
    """

    __slots__ = ("_orders", "_indexes", "_size")

    def __init__(self, orders: Iterable[str] = DEFAULT_ORDERS):
        order_names = tuple(orders)
        if not order_names:
            raise ValueError("at least one index order is required")
        for name in order_names:
            if name not in _ORDER_BY_NAME:
                raise ValueError(f"unknown index order: {name!r}")
        self._orders: Tuple[Tuple[str, IndexOrder], ...] = tuple(
            (name, _ORDER_BY_NAME[name]) for name in order_names
        )
        self._indexes: Tuple[_Nested, ...] = tuple({} for _ in self._orders)
        self._size = 0

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: EncodedTriple) -> bool:
        __, permutation = self._orders[0]
        index = self._indexes[0]
        first, second, third = (triple[permutation[i]] for i in range(3))
        level = index.get(first)
        if level is None:
            return False
        leaf = level.get(second)
        return leaf is not None and third in leaf

    def __iter__(self) -> Iterator[EncodedTriple]:
        __, permutation = self._orders[0]
        inverse = _invert(permutation)
        for first, level in self._indexes[0].items():
            for second, leaf in level.items():
                for third in leaf:
                    ordered = (first, second, third)
                    yield (ordered[inverse[0]], ordered[inverse[1]], ordered[inverse[2]])

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, triple: EncodedTriple) -> bool:
        """Insert ``triple``; return True iff it was not already present."""
        inserted = False
        for (__, permutation), index in zip(self._orders, self._indexes):
            first = triple[permutation[0]]
            second = triple[permutation[1]]
            third = triple[permutation[2]]
            leaf = index.setdefault(first, {}).setdefault(second, set())
            before = len(leaf)
            leaf.add(third)
            inserted = len(leaf) != before
        if inserted:
            self._size += 1
        return inserted

    def add_batch(self, triples: Iterable[EncodedTriple]) -> list:
        """Insert many triples; return the ones actually new, in order."""
        return [t for t in triples if self.add(t)]

    def discard(self, triple: EncodedTriple) -> bool:
        """Remove ``triple``; return True iff it was present."""
        if triple not in self:
            return False
        for (__, permutation), index in zip(self._orders, self._indexes):
            first = triple[permutation[0]]
            second = triple[permutation[1]]
            third = triple[permutation[2]]
            level = index[first]
            leaf = level[second]
            leaf.discard(third)
            if not leaf:
                del level[second]
                if not level:
                    del index[first]
        self._size -= 1
        return True

    def clear(self) -> None:
        self._indexes = tuple({} for _ in self._orders)
        self._size = 0

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------

    def match(self, s: Optional[int], p: Optional[int],
              o: Optional[int]) -> Iterator[EncodedTriple]:
        """Iterate triples matching the pattern (``None`` = wildcard)."""
        pattern = (s, p, o)
        bound = frozenset(i for i, v in enumerate(pattern) if v is not None)

        if len(bound) == 3:
            if (s, p, o) in self:  # type: ignore[arg-type]
                yield (s, p, o)  # type: ignore[misc]
            return

        order_index, prefix_len = self._best_order(bound)
        __, permutation = self._orders[order_index]
        index = self._indexes[order_index]
        inverse = _invert(permutation)
        residual = [i for i in bound if permutation.index(i) >= prefix_len]

        def emit(first: int, second: int, third: int) -> EncodedTriple:
            ordered = (first, second, third)
            return (ordered[inverse[0]], ordered[inverse[1]], ordered[inverse[2]])

        def level1() -> Iterable[Tuple[int, Dict[int, Set[int]]]]:
            if prefix_len >= 1:
                key = pattern[permutation[0]]
                level = index.get(key)  # type: ignore[arg-type]
                return [(key, level)] if level is not None else []  # type: ignore[list-item]
            return index.items()

        for first, level in level1():
            if prefix_len >= 2:
                key2 = pattern[permutation[1]]
                leaf = level.get(key2)  # type: ignore[arg-type]
                seconds: Iterable[Tuple[int, Set[int]]] = (
                    [(key2, leaf)] if leaf is not None else []  # type: ignore[list-item]
                )
            else:
                seconds = level.items()
            for second, leaf in seconds:
                for third in leaf:
                    triple = emit(first, second, third)
                    if residual and any(triple[i] != pattern[i] for i in residual):
                        continue
                    yield triple

    def count(self, s: Optional[int] = None, p: Optional[int] = None,
              o: Optional[int] = None) -> int:
        """Exact number of triples matching the pattern.

        Cheap (no materialization) when an index order has the bound
        positions as a prefix; otherwise falls back to iteration.
        """
        pattern = (s, p, o)
        bound = frozenset(i for i, v in enumerate(pattern) if v is not None)
        if not bound:
            return self._size
        if len(bound) == 3:
            return 1 if (s, p, o) in self else 0  # type: ignore[arg-type]

        order_index, prefix_len = self._best_order(bound)
        if prefix_len == len(bound):
            __, permutation = self._orders[order_index]
            index = self._indexes[order_index]
            level = index.get(pattern[permutation[0]])  # type: ignore[arg-type]
            if level is None:
                return 0
            if prefix_len == 1:
                return sum(len(leaf) for leaf in level.values())
            leaf = level.get(pattern[permutation[1]])  # type: ignore[arg-type]
            return len(leaf) if leaf is not None else 0
        return sum(1 for __ in self.match(s, p, o))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _best_order(self, bound: frozenset) -> Tuple[int, int]:
        """Pick the order with the longest prefix of bound positions.

        Returns ``(order_index, usable_prefix_length)``.
        """
        best = (0, 0)
        for i, (__, permutation) in enumerate(self._orders):
            prefix = 0
            while prefix < 3 and permutation[prefix] in bound:
                prefix += 1
            prefix = min(prefix, len(bound))
            if prefix > best[1]:
                best = (i, prefix)
        return best

    @property
    def order_names(self) -> Tuple[str, ...]:
        return tuple(name for name, __ in self._orders)

    def copy(self) -> "TripleIndex":
        clone = TripleIndex(self.order_names)
        for triple in self:
            clone.add(triple)
        return clone


def invert_order(permutation: IndexOrder) -> IndexOrder:
    """The inverse permutation (permuted position -> original position)."""
    inverse = [0, 0, 0]
    for position, original in enumerate(permutation):
        inverse[original] = position
    return (inverse[0], inverse[1], inverse[2])


_invert = invert_order
