"""Namespace handling and the built-in RDF/RDFS/XSD/OWL vocabularies.

The RDF standard provides a set of built-in classes and properties as
part of the ``rdf:`` and ``rdfs:`` pre-defined namespaces (Section II-A
of the paper); ``rdf:type`` and the four RDFS constraint properties
(``rdfs:subClassOf``, ``rdfs:subPropertyOf``, ``rdfs:domain``,
``rdfs:range``) are the ones the reasoning machinery dispatches on.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .terms import URI

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "XSD",
    "OWL",
    "REPRO",
    "DEFAULT_PREFIXES",
]


class Namespace:
    """A URI prefix from which terms are minted by attribute access.

    >>> EX = Namespace("http://example.org/")
    >>> EX.Person
    URI('http://example.org/Person')
    >>> EX["strange-name"]
    URI('http://example.org/strange-name')
    """

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base
        self._cache: Dict[str, URI] = {}

    @property
    def base(self) -> str:
        return self._base

    def term(self, name: str) -> URI:
        uri = self._cache.get(name)
        if uri is None:
            uri = URI(self._base + name)
            self._cache[name] = uri
        return uri

    def __getattr__(self, name: str) -> URI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> URI:
        return self.term(name)

    def __contains__(self, uri: object) -> bool:
        return isinstance(uri, URI) and uri.value.startswith(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(self._base)


#: The RDF built-in vocabulary.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
#: The RDF Schema vocabulary used for the paper's four constraints.
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
#: XML Schema datatypes, for typed literals.
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
#: The OWL vocabulary subset used by the RDFS-Plus rule set.
OWL = Namespace("http://www.w3.org/2002/07/owl#")
#: Namespace used by this library's own generators and examples.
REPRO = Namespace("http://repro.example.org/")

DEFAULT_PREFIXES: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "xsd": XSD,
    "owl": OWL,
    "repro": REPRO,
}


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry.

    Used by the Turtle/SPARQL parsers to expand CURIEs (``rdf:type``)
    and by the serializers to compact URIs back into CURIEs.
    """

    def __init__(self, bind_defaults: bool = True):
        self._prefix_to_ns: Dict[str, Namespace] = {}
        self._base_to_prefix: Dict[str, str] = {}
        if bind_defaults:
            for prefix, namespace in DEFAULT_PREFIXES.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: "Namespace | str") -> None:
        """Associate ``prefix`` with ``namespace``, replacing any prior binding."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        previous = self._prefix_to_ns.get(prefix)
        if previous is not None:
            self._base_to_prefix.pop(previous.base, None)
        self._prefix_to_ns[prefix] = namespace
        self._base_to_prefix[namespace.base] = prefix

    def namespace(self, prefix: str) -> Namespace:
        try:
            return self._prefix_to_ns[prefix]
        except KeyError:
            raise KeyError(f"unbound namespace prefix: {prefix!r}") from None

    def expand(self, curie: str) -> URI:
        """Expand a CURIE like ``rdf:type`` into a full URI."""
        prefix, sep, local = curie.partition(":")
        if not sep:
            raise ValueError(f"not a CURIE (missing ':'): {curie!r}")
        return self.namespace(prefix).term(local)

    def compact(self, uri: URI) -> str:
        """Compact a URI into a CURIE if a prefix matches, else N3 form."""
        best_prefix = None
        best_base = ""
        for base, prefix in self._base_to_prefix.items():
            if uri.value.startswith(base) and len(base) > len(best_base):
                best_prefix, best_base = prefix, base
        if best_prefix is None:
            return uri.n3()
        local = uri.value[len(best_base):]
        if not local or any(ch in local for ch in "/#?"):
            return uri.n3()
        return f"{best_prefix}:{local}"

    def __iter__(self) -> Iterator[Tuple[str, Namespace]]:
        return iter(self._prefix_to_ns.items())

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns

    def copy(self) -> "NamespaceManager":
        clone = NamespaceManager(bind_defaults=False)
        for prefix, namespace in self:
            clone.bind(prefix, namespace)
        return clone
