"""RDF graph isomorphism up to blank node renaming.

The saturation of an RDF graph "is unique up to blank node renaming"
(Section II-A): two saturations of the same graph may differ in the
labels of their blank nodes but never in structure.  This module makes
that equivalence checkable: :func:`isomorphic` decides whether two
graphs differ only by a bijective relabeling of blank nodes.

The algorithm is the practical one used by RDF toolkits:

1. ground (blank-free) triples must match exactly;
2. blank nodes are partitioned by an iteratively refined *signature*
   (a hash of each node's ground neighbourhood, then of its
   neighbours' signatures — colour refinement);
3. remaining ambiguity (automorphic candidates) falls back to
   backtracking over signature-compatible bijections.

Worst cases are exponential (graph isomorphism), but RDF data's blank
nodes are overwhelmingly distinguishable after refinement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .graph import Graph
from .terms import BlankNode, RDFTerm
from .triples import Triple

__all__ = ["isomorphic", "blank_node_bijection", "canonical_signatures",
           "is_lean"]


def _blank_nodes(graph: Graph) -> Set[BlankNode]:
    result: Set[BlankNode] = set()
    for triple in graph:
        if isinstance(triple.s, BlankNode):
            result.add(triple.s)
        if isinstance(triple.o, BlankNode):
            result.add(triple.o)
    return result


def _ground_part(graph: Graph) -> Set[Triple]:
    return {t for t in graph
            if not isinstance(t.s, BlankNode)
            and not isinstance(t.o, BlankNode)}


def canonical_signatures(graph: Graph,
                         rounds: int = 4) -> Dict[BlankNode, int]:
    """Colour-refinement signatures for the graph's blank nodes.

    Nodes with different signatures can never correspond under an
    isomorphism; equal signatures mean "possibly interchangeable".
    """
    nodes = _blank_nodes(graph)
    signature: Dict[BlankNode, int] = {node: 0 for node in nodes}
    for __ in range(rounds):
        updated: Dict[BlankNode, int] = {}
        for node in nodes:
            parts: List[tuple] = []
            for triple in graph.triples(node, None, None):
                other = triple.o
                if isinstance(other, BlankNode):
                    parts.append(("out", triple.p.value, "?",
                                  signature[other]))
                else:
                    parts.append(("out", triple.p.value, other.n3(), 0))
            for triple in graph.triples(None, None, node):
                other = triple.s
                if isinstance(other, BlankNode):
                    parts.append(("in", triple.p.value, "?",
                                  signature[other]))
                else:
                    parts.append(("in", triple.p.value, other.n3(), 0))
            updated[node] = hash(tuple(sorted(parts)))
        if updated == signature:
            break
        signature = updated
    return signature


def blank_node_bijection(left: Graph, right: Graph
                         ) -> Optional[Dict[BlankNode, BlankNode]]:
    """A bijection between blank nodes turning ``left`` into ``right``,
    or ``None`` when the graphs are not isomorphic."""
    if len(left) != len(right):
        return None
    if _ground_part(left) != _ground_part(right):
        return None
    left_nodes = sorted(_blank_nodes(left))
    right_nodes = _blank_nodes(right)
    if len(left_nodes) != len(right_nodes):
        return None
    if not left_nodes:
        return {}

    left_signatures = canonical_signatures(left)
    right_signatures = canonical_signatures(right)
    right_by_signature: Dict[int, List[BlankNode]] = {}
    for node in right_nodes:
        right_by_signature.setdefault(right_signatures[node], []).append(node)
    # quick reject: the signature multisets must coincide
    left_counts: Dict[int, int] = {}
    for node in left_nodes:
        left_counts[left_signatures[node]] = \
            left_counts.get(left_signatures[node], 0) + 1
    if left_counts != {sig: len(nodes)
                       for sig, nodes in right_by_signature.items()}:
        return None

    # order most-constrained first (fewest candidates)
    left_nodes.sort(key=lambda n: len(right_by_signature[left_signatures[n]]))

    right_triples = set(right)

    def renamed(triple: Triple, mapping: Dict[BlankNode, BlankNode]
                ) -> Optional[Triple]:
        def walk(term: RDFTerm) -> Optional[RDFTerm]:
            if isinstance(term, BlankNode):
                return mapping.get(term)
            return term

        s = walk(triple.s)
        o = walk(triple.o)
        if s is None or o is None:
            return None  # involves an unmapped node: check later
        return Triple(s, triple.p, o)

    def consistent(mapping: Dict[BlankNode, BlankNode],
                   node: BlankNode) -> bool:
        """Every left triple touching ``node`` whose nodes are all
        mapped must exist in the right graph."""
        for triple in list(left.triples(node, None, None)) + \
                list(left.triples(None, None, node)):
            image = renamed(triple, mapping)
            if image is not None and image not in right_triples:
                return False
        return True

    used: Set[BlankNode] = set()

    def search(index: int,
               mapping: Dict[BlankNode, BlankNode]
               ) -> Optional[Dict[BlankNode, BlankNode]]:
        if index == len(left_nodes):
            return dict(mapping)
        node = left_nodes[index]
        for candidate in right_by_signature[left_signatures[node]]:
            if candidate in used:
                continue
            mapping[node] = candidate
            used.add(candidate)
            if consistent(mapping, node):
                result = search(index + 1, mapping)
                if result is not None:
                    return result
            used.discard(candidate)
            del mapping[node]
        return None

    return search(0, {})


def is_lean(graph: Graph) -> bool:
    """Is the graph *lean* — free of internal redundancy?

    A graph is lean when no proper instance of itself is a subgraph,
    i.e. no mapping of blank nodes to other terms reproduces a strict
    subgraph (RDF Semantics).  A non-lean graph says nothing more than
    its lean core: ``_:b p o . s p o .`` is non-lean because ``_:b``
    maps onto ``s``.

    Blank nodes are the paper's "form of incomplete information"; lean
    graphs are the ones where that incompleteness is irredundant.
    """
    nodes = sorted(_blank_nodes(graph))
    if not nodes:
        return True
    triples = set(graph)
    candidates: List[RDFTerm] = sorted(
        {t.s for t in graph} | {t.o for t in graph},
        key=lambda term: term.sort_key())

    def image(triple: Triple, mapping: Dict[BlankNode, RDFTerm]
              ) -> Optional[Triple]:
        def walk(term: RDFTerm) -> Optional[RDFTerm]:
            if isinstance(term, BlankNode):
                return mapping.get(term, term)
            return term

        s, o = walk(triple.s), walk(triple.o)
        try:
            return Triple(s, triple.p, o)  # type: ignore[arg-type]
        except TypeError:
            return None

    def has_unmapped_blank(triple: Triple,
                           mapping: Dict[BlankNode, RDFTerm]) -> bool:
        """A triple whose other end is a not-yet-mapped blank cannot be
        checked yet; its check is deferred to that node's turn."""
        for term in (triple.s, triple.o):
            if isinstance(term, BlankNode) and term not in mapping:
                return True
        return False

    def search(index: int, mapping: Dict[BlankNode, RDFTerm],
               proper: bool) -> bool:
        """Is there a homomorphism into the graph that is proper (maps
        at least one blank node to something else)?"""
        if index == len(nodes):
            return proper
        node = nodes[index]
        for candidate in candidates:
            mapping[node] = candidate
            ok = True
            for triple in list(graph.triples(node, None, None)) + \
                    list(graph.triples(None, None, node)):
                if has_unmapped_blank(triple, mapping):
                    continue
                mapped = image(triple, mapping)
                if mapped is None or mapped not in triples:
                    ok = False
                    break
            if ok and search(index + 1, mapping,
                             proper or candidate != node):
                return True
            del mapping[node]
        return False

    return not search(0, {}, False)


def isomorphic(left: Graph, right: Graph) -> bool:
    """Are the two graphs equal up to blank node renaming?

    >>> from repro.rdf import Graph, Triple, BlankNode, URI
    >>> p = URI("http://x/p")
    >>> a = Graph([Triple(BlankNode("a"), p, URI("http://x/o"))])
    >>> b = Graph([Triple(BlankNode("z"), p, URI("http://x/o"))])
    >>> isomorphic(a, b)
    True
    """
    return blank_node_bijection(left, right) is not None
