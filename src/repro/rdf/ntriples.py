"""N-Triples parser and serializer.

N-Triples is the line-oriented exchange syntax RDF endpoints commonly
publish dumps in; each line carries one triple in fully-expanded form.
The parser is strict about well-formedness (the paper assumes
well-formed RDF triples) and reports the offending line on error.
"""

from __future__ import annotations

import re
from typing import IO, Iterable, Iterator, Union

from .graph import Graph
from .terms import BlankNode, Literal, RDFTerm, URI
from .triples import Triple

__all__ = ["parse_ntriples", "parse_ntriples_line", "serialize_ntriples",
           "graph_from_ntriples", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with line information."""

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        self.line_number = line_number
        self.line = line
        if line_number:
            message = f"line {line_number}: {message}: {line.strip()!r}"
        super().__init__(message)


_URI_RE = (r"<((?:[^<>\"{}|^`\\\x00-\x20]"
           r"|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8})*)>")
_BLANK_RE = r"_:([A-Za-z0-9][A-Za-z0-9._-]*)"
_LITERAL_RE = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>]*)>|@([A-Za-z]+(?:-[A-Za-z0-9]+)*))?'

_TRIPLE_RE = re.compile(
    rf"^\s*(?:{_URI_RE}|{_BLANK_RE})"      # subject: groups 1, 2
    rf"\s+{_URI_RE}"                        # property: group 3
    rf"\s+(?:{_URI_RE}|{_BLANK_RE}|{_LITERAL_RE})"  # object: groups 4-8
    r"\s*\.\s*(?:#.*)?$"
)

_ESCAPES = {
    "t": "\t", "n": "\n", "r": "\r", '"': '"', "\\": "\\", "'": "'",
    "b": "\b", "f": "\f",
}


def _unescape(text: str) -> str:
    """Decode N-Triples string escapes, including \\uXXXX / \\UXXXXXXXX."""
    if "\\" not in text:
        return text
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise NTriplesError("dangling escape at end of string")
        code = text[i + 1]
        if code in _ESCAPES:
            out.append(_ESCAPES[code])
            i += 2
        elif code == "u":
            out.append(chr(int(text[i + 2:i + 6], 16)))
            i += 6
        elif code == "U":
            out.append(chr(int(text[i + 2:i + 10], 16)))
            i += 10
        else:
            raise NTriplesError(f"unknown escape sequence: \\{code}")
    return "".join(out)


def parse_ntriples_line(line: str, line_number: int = 0) -> Triple:
    """Parse a single non-blank, non-comment N-Triples line."""
    match = _TRIPLE_RE.match(line)
    if match is None:
        raise NTriplesError("malformed triple", line_number, line)
    (s_uri, s_blank, p_uri, o_uri, o_blank,
     o_lex, o_datatype, o_lang) = match.groups()

    subject: RDFTerm = URI(_unescape(s_uri)) if s_uri is not None else BlankNode(s_blank)
    prop = URI(_unescape(p_uri))
    if o_uri is not None:
        obj: RDFTerm = URI(_unescape(o_uri))
    elif o_blank is not None:
        obj = BlankNode(o_blank)
    else:
        datatype = URI(_unescape(o_datatype)) if o_datatype else None
        obj = Literal(_unescape(o_lex), datatype=datatype, language=o_lang)
    return Triple(subject, prop, obj)


def parse_ntriples(source: Union[str, IO[str]]) -> Iterator[Triple]:
    """Parse an N-Triples document (a string or a text file object)."""
    lines = source.splitlines() if isinstance(source, str) else source
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_ntriples_line(line, line_number)


def graph_from_ntriples(source: Union[str, IO[str]]) -> Graph:
    """Build a :class:`Graph` from an N-Triples document."""
    graph = Graph()
    graph.update(parse_ntriples(source))
    return graph


def serialize_ntriples(triples: Iterable[Triple], sort: bool = False) -> str:
    """Serialize triples to an N-Triples document.

    With ``sort=True`` the output order is canonical, which makes dumps
    diffable across runs.
    """
    items = list(triples)
    if sort:
        items.sort()
    return "".join(t.n3() + "\n" for t in items)
