"""Turtle (subset) parser and serializer.

Supports the Turtle features real-world RDFS ontologies and the
examples in the paper actually use:

* ``@prefix`` / SPARQL-style ``PREFIX`` declarations;
* prefixed names (``rdf:type``), full URIs, blank node labels;
* the ``a`` keyword for ``rdf:type``;
* predicate lists (``;``) and object lists (``,``);
* plain, language-tagged (``@en``) and typed (``^^xsd:int``) literals,
  plus bare integer / decimal / boolean abbreviations.

Not supported (not needed by any workload here): collections ``( )``,
anonymous blank-node property lists ``[ ]``, multiline literals.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple

from .graph import Graph
from .namespaces import NamespaceManager, RDF, XSD
from .ntriples import _unescape
from .terms import BlankNode, Literal, RDFTerm, URI
from .triples import Triple

__all__ = ["parse_turtle", "graph_from_turtle", "serialize_turtle", "TurtleError"]


class TurtleError(ValueError):
    """Raised on malformed Turtle input."""


_TOKEN_RE = re.compile(
    r"""
      (?P<comment>\#[^\n]*)
    | (?P<uri><[^<>"{}|^`\\\x00-\x20]*>)
    | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^(?:<[^<>]*>|[A-Za-z][\w.-]*:[\w.-]*)|@[A-Za-z]+(?:-[A-Za-z0-9]+)*)?)
    | (?P<blank>_:[A-Za-z0-9][A-Za-z0-9._-]*)
    | (?P<prefix_decl>@prefix|@base|(?i:PREFIX|BASE)\b)
    | (?P<number>[+-]?\d+\.\d+|[+-]?\d+)
    | (?P<boolean>\btrue\b|\bfalse\b)
    | (?P<pname>[A-Za-z][\w.-]*:[\w.-]*|:[\w.-]+|[A-Za-z][\w.-]*:)
    | (?P<kw_a>\ba\b)
    | (?P<punct>[.;,])
    | (?P<ws>\s+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            snippet = text[position:position + 30]
            raise TurtleError(f"unexpected input at offset {position}: {snippet!r}")
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str, namespaces: Optional[NamespaceManager]):
        self.tokens = _tokenize(text)
        self.position = 0
        self.namespaces = namespaces if namespaces is not None else NamespaceManager()

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise TurtleError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            raise TurtleError(f"expected {value or kind}, got {got_value!r}")
        return got_value

    # -- productions ---------------------------------------------------

    def statements(self) -> Iterator[Triple]:
        while self.peek() is not None:
            kind, value = self.peek()  # type: ignore[misc]
            if kind == "prefix_decl":
                self.directive(value)
            else:
                yield from self.triple_block()

    def directive(self, keyword: str) -> None:
        self.next()
        lowered = keyword.lower().lstrip("@")
        if lowered == "base":
            self.expect("uri")  # recorded but unused: all test data is absolute
            if keyword.startswith("@"):
                self.expect("punct", ".")
            return
        prefix_token = self.expect("pname")
        prefix = prefix_token.rstrip(":")
        uri_token = self.expect("uri")
        self.namespaces.bind(prefix, uri_token[1:-1])
        if keyword.startswith("@"):
            self.expect("punct", ".")

    def triple_block(self) -> Iterator[Triple]:
        subject = self.term(position="subject")
        while True:
            prop = self.term(position="property")
            while True:
                obj = self.term(position="object")
                yield Triple(subject, prop, obj)  # type: ignore[arg-type]
                kind, value = self.peek() or ("", "")
                if kind == "punct" and value == ",":
                    self.next()
                    continue
                break
            kind, value = self.peek() or ("", "")
            if kind == "punct" and value == ";":
                self.next()
                # tolerate trailing ';' before '.'
                kind2, value2 = self.peek() or ("", "")
                if kind2 == "punct" and value2 == ".":
                    self.next()
                    return
                continue
            self.expect("punct", ".")
            return

    def term(self, position: str) -> RDFTerm:
        kind, value = self.next()
        if kind == "uri":
            return URI(_unescape(value[1:-1]))
        if kind == "pname":
            return self.namespaces.expand(value)
        if kind == "kw_a":
            if position != "property":
                raise TurtleError("'a' keyword only allowed in property position")
            return RDF.type
        if kind == "blank":
            if position == "property":
                raise TurtleError("blank node not allowed in property position")
            return BlankNode(value[2:])
        if kind == "literal":
            if position != "object":
                raise TurtleError("literal only allowed in object position")
            return self._literal(value)
        if kind == "number":
            if position != "object":
                raise TurtleError("numeric literal only allowed in object position")
            datatype = XSD.decimal if "." in value else XSD.integer
            return Literal(value, datatype=datatype)
        if kind == "boolean":
            if position != "object":
                raise TurtleError("boolean literal only allowed in object position")
            return Literal(value, datatype=XSD.boolean)
        raise TurtleError(f"unexpected token {value!r} in {position} position")

    def _literal(self, token: str) -> Literal:
        closing = _find_closing_quote(token)
        lexical = _unescape(token[1:closing])
        suffix = token[closing + 1:]
        if suffix.startswith("^^"):
            datatype_token = suffix[2:]
            if datatype_token.startswith("<"):
                return Literal(lexical, datatype=URI(datatype_token[1:-1]))
            return Literal(lexical, datatype=self.namespaces.expand(datatype_token))
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        return Literal(lexical)


def _find_closing_quote(token: str) -> int:
    index = 1
    while index < len(token):
        if token[index] == "\\":
            index += 2
            continue
        if token[index] == '"':
            return index
        index += 1
    raise TurtleError(f"unterminated literal: {token!r}")


def parse_turtle(text: str,
                 namespaces: Optional[NamespaceManager] = None) -> Iterator[Triple]:
    """Parse a Turtle document, yielding its triples."""
    yield from _Parser(text, namespaces).statements()


def graph_from_turtle(text: str) -> Graph:
    """Build a :class:`Graph` from Turtle text; prefixes are retained."""
    graph = Graph()
    parser = _Parser(text, graph.namespaces)
    graph.update(parser.statements())
    return graph


def serialize_turtle(graph: Graph) -> str:
    """Serialize a graph to Turtle, grouping by subject and compacting URIs."""
    manager = graph.namespaces
    lines: List[str] = []
    for prefix, namespace in sorted(manager, key=lambda item: item[0]):
        lines.append(f"@prefix {prefix}: <{namespace.base}> .")
    if lines:
        lines.append("")

    def render(term: RDFTerm) -> str:
        if isinstance(term, URI):
            return manager.compact(term)
        if isinstance(term, Literal) and term.datatype is not None:
            compacted = manager.compact(term.datatype)
            if not compacted.startswith("<"):
                quoted = term.n3().rsplit("^^", 1)[0]
                return f"{quoted}^^{compacted}"
        return term.n3()

    def render_property(term: URI) -> str:
        if term == RDF.type:
            return "a"
        return manager.compact(term)

    by_subject: dict = {}
    for triple in graph:
        by_subject.setdefault(triple.s, []).append(triple)
    for subject in sorted(by_subject, key=lambda t: t.sort_key()):
        group = sorted(by_subject[subject])
        parts = []
        for triple in group:
            parts.append(f"{render_property(triple.p)} {render(triple.o)}")
        joined = " ;\n    ".join(parts)
        subject_str = subject.n3() if isinstance(subject, BlankNode) \
            else manager.compact(subject)
        lines.append(f"{subject_str} {joined} .")
    return "\n".join(lines) + "\n"
