"""Columnar triple indexes: dictionary-encoded sorted runs.

The hash-nested :class:`~repro.rdf.index.TripleIndex` answers point
lookups well but materializes a Python ``dict``/``set`` node per
distinct prefix and yields triples in hash order.  Production RDF
engines (RDF-3X [23], Hexastore [24], and the LiteMat line of
dictionary-encoded reasoners) instead lay each index order out as a
*sorted run* of integer triples, because sortedness buys three things
at once:

* **range lookup** — any bound prefix is a binary search plus a
  contiguous scan (no per-level hashing, no pointer chasing);
* **ordered iteration** — the suffix positions come out sorted, which
  is what merge joins and leapfrog-style intersections consume
  (:mod:`repro.sparql.joins`);
* **compactness** — one flat ``array('q')`` per order instead of a
  tree of boxed objects.

Mutations go to a small per-order *delta log* (a sorted list of
tuples) and deletions to a tombstone set; when a delta outgrows its
run the two are merged into a fresh generation of the run — the
classic LSM discipline, sized so the amortized insert cost stays
logarithmic while scans only ever merge two sorted sources.

The class mirrors :class:`TripleIndex`'s surface (same constructor,
same eight-shape ``match``/``count`` semantics, same configurable
``orders`` so the ABL-IDX ablation runs unchanged) and adds the
order-aware primitives the join operators need: prefix runs, seeks
and exact prefix counts.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Union)

from .. import kernels
from ..obs import get_metrics
from .index import (DEFAULT_ORDERS, EncodedTriple, IndexOrder,
                    ORDER_PERMUTATIONS, invert_order)

__all__ = ["ColumnarTripleIndex", "MERGE_MIN_DELTA", "Run"]

#: A main run's storage: a mutable ``array('q')`` while building, or a
#: read-only int64 memoryview over an mmap'd run file after a durable
#: store reopens (repro.storage) — the scan/search primitives only
#: ever index, slice and ``len()`` it, which both types serve.  The
#: first merge after reopening materializes back to an ``array``.
Run = Union[array, memoryview]

#: A delta log is merged into its run once it holds this many triples
#: (or an eighth of the run, whichever is larger): small enough that
#: scans rarely touch a long delta, large enough that merges amortize.
MERGE_MIN_DELTA = 128


def _lower_bound2(run: Run, first: int, second: int) -> int:
    """Index (in triples, not slots) of the first run entry whose
    leading two components compare >= ``(first, second)``.

    The two-bound-prefix search is the hot one (every scan step the
    rule engine compiles lands here), so it gets a loop with the key
    unpacked instead of the generic width dispatch.
    """
    lo, hi = 0, len(run) // 3
    while lo < hi:
        mid = (lo + hi) // 2
        base = 3 * mid
        a = run[base]
        if a < first or (a == first and run[base + 1] < second):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _lower_bound3(run: Run, a: int, b: int, c: int) -> int:
    """Index (in triples, not slots) of the first run entry comparing
    >= ``(a, b, c)`` — full-triple search with short-circuit compares
    (drives membership tests, so no tuple per probe)."""
    lo, hi = 0, len(run) // 3
    while lo < hi:
        mid = (lo + hi) // 2
        base = 3 * mid
        x = run[base]
        if x != a:
            less = x < a
        else:
            y = run[base + 1]
            less = y < b if y != b else run[base + 2] < c
        if less:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _lower_bound(run: Run, key: Tuple[int, ...]) -> int:
    """Index (in triples, not slots) of the first run entry whose
    leading ``len(key)`` components compare >= ``key``."""
    width = len(key)
    if width == 2:
        return _lower_bound2(run, key[0], key[1])
    if width == 3:
        return _lower_bound3(run, key[0], key[1], key[2])
    lo, hi = 0, len(run) // 3
    while lo < hi:
        mid = (lo + hi) // 2
        if run[3 * mid] < key[0]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _after_prefix(prefix: Tuple[int, ...]) -> Tuple[int, ...]:
    """The smallest key strictly greater than every extension of
    ``prefix`` (identifiers are non-negative, so +1 is safe)."""
    return prefix[:-1] + (prefix[-1] + 1,)


class _OrderRuns:
    """One order's storage: main sorted run + sorted delta + tombstones.

    All triples here live in *permuted* component order; the owning
    index translates to and from (s, p, o).
    """

    __slots__ = ("main", "delta", "dead", "_cviews")

    def __init__(self) -> None:
        self.main: Run = array("q")
        self.delta: List[EncodedTriple] = []
        self.dead: Set[EncodedTriple] = set()
        # (main, (v0, v1, v2)): cached per-component strided views of
        # the main run, keyed by identity — ``main`` is only ever
        # rebound (merge, bulk load, storage attach), never resized in
        # place, so an identity hit proves the views are current
        self._cviews: Optional[Tuple[Run, Tuple["memoryview", ...]]] = None

    def __len__(self) -> int:
        return len(self.main) // 3 - len(self.dead) + len(self.delta)

    def contains(self, triple: EncodedTriple) -> bool:
        if self.delta:
            i = bisect_left(self.delta, triple)
            if i < len(self.delta) and self.delta[i] == triple:
                return True
        if triple in self.dead:
            return False
        a, b, c = triple
        if kernels.vectorized():
            # column-at-a-time: five C bisect probes over the strided
            # component views instead of one interpreted binary search
            v0, v1, v2 = self._components()
            lo = bisect_left(v0, a, 0, len(v0))
            hi = bisect_left(v0, a + 1, lo)
            lo = bisect_left(v1, b, lo, hi)
            hi = bisect_left(v1, b + 1, lo, hi)
            lo = bisect_left(v2, c, lo, hi)
            return lo < hi and v2[lo] == c
        main = self.main
        base = 3 * _lower_bound3(main, a, b, c)
        return (base < len(main) and main[base] == a
                and main[base + 1] == b and main[base + 2] == c)

    def contains_sorted(self, batch: Sequence[EncodedTriple]) -> List[bool]:
        """Presence flags for an *ascending* batch of permuted triples.

        The set-at-a-time membership probe: because the batch is
        sorted, each triple's component bisects start where the
        previous span began and the delta cursor only moves forward —
        one monotone sweep of C searches instead of an independent
        :meth:`contains` per triple.
        """
        delta = self.delta
        dead = self.dead
        v0, v1, v2 = self._components()
        n = len(v0)
        flags: List[bool] = []
        append = flags.append
        pos = 0
        di, dn = 0, len(delta)
        # ascending batches cluster by leading components: the spans
        # of the previous item's first/second component stay valid for
        # runs of equal keys, eliding four of the five bisects
        last_a: Optional[int] = None
        last_b: Optional[int] = None
        alo = ahi = blo = bhi = 0
        for t in batch:
            if delta:
                di = bisect_left(delta, t, di, dn)
                if di < dn and delta[di] == t:
                    append(True)
                    continue
            if dead and t in dead:
                append(False)
                continue
            a, b, c = t
            if a != last_a:
                alo = bisect_left(v0, a, pos, n)
                ahi = bisect_left(v0, a + 1, alo, n)
                pos = alo
                last_a = a
                last_b = None
            if b != last_b:
                blo = bisect_left(v1, b, alo, ahi)
                bhi = bisect_left(v1, b + 1, blo, ahi)
                last_b = b
            lo = bisect_left(v2, c, blo, bhi)
            append(lo < bhi and v2[lo] == c)
        return flags

    def insert(self, triple: EncodedTriple) -> None:
        """Append to the delta log (caller guarantees absence)."""
        if triple in self.dead:
            self.dead.discard(triple)
            return
        i = bisect_left(self.delta, triple)
        self.delta.insert(i, triple)

    def insert_sorted_batch(self, batch: List[EncodedTriple]) -> None:
        """Fold a sorted, deduplicated, absent batch into the delta."""
        resurrected = self.dead & set(batch)
        if resurrected:
            self.dead -= resurrected
            batch = [t for t in batch if t not in resurrected]
        if not batch:
            return
        if self.delta:
            merged = self.delta + batch
            merged.sort()
            self.delta = merged
        else:
            self.delta = list(batch)

    def remove(self, triple: EncodedTriple) -> None:
        """Delete (caller guarantees presence)."""
        i = bisect_left(self.delta, triple)
        if i < len(self.delta) and self.delta[i] == triple:
            del self.delta[i]
        else:
            self.dead.add(triple)

    def should_merge(self) -> bool:
        main_triples = len(self.main) // 3
        threshold = max(MERGE_MIN_DELTA, main_triples >> 3)
        return (len(self.delta) >= threshold
                or len(self.dead) * 4 > max(main_triples, 1))

    def merge(self) -> None:
        """Merge delta into the main run, dropping tombstoned entries.

        The merge itself is a kernel (:func:`repro.kernels.merge_runs`):
        block copies between delta insertion points under the default
        ``python`` mode, a lexsort under ``numpy``, the per-triple
        reference loop under ``scalar`` — all three produce the same
        buffer bit for bit.
        """
        self.main = kernels.merge_runs(self.main, self.delta, self.dead)
        self.delta = []
        self.dead = set()

    # -- sorted access --------------------------------------------------

    def scan(self, prefix: Tuple[int, ...] = ()) -> Iterator[EncodedTriple]:
        """All live triples extending ``prefix``, in sorted order."""
        main, delta = self.main, self.delta
        if prefix:
            after = _after_prefix(prefix)
            lo, hi = _lower_bound(main, prefix), _lower_bound(main, after)
        else:
            lo, hi = 0, len(main) // 3
        dead = self.dead
        if not delta and not dead:
            # merged-and-clean fast path: the run is the answer
            for base in range(3 * lo, 3 * hi, 3):
                yield (main[base], main[base + 1], main[base + 2])
            return
        if prefix:
            di, dn = bisect_left(delta, prefix), bisect_left(delta, after)
        else:
            di, dn = 0, len(delta)
        for i in range(lo, hi):
            base = 3 * i
            t = (main[base], main[base + 1], main[base + 2])
            if dead and t in dead:
                continue
            while di < dn and delta[di] < t:
                yield delta[di]
                di += 1
            yield t
        while di < dn:
            yield delta[di]
            di += 1

    def scan_values(self, first: int, second: int) -> Iterator[int]:
        """Third components of live triples under the full two-component
        prefix ``(first, second)``, in sorted order.

        The rule engine's dominant scan shape — two bound prefix
        positions, one free suffix — reduced to a single binary search
        and a forward walk over the run: no upper-bound search, no
        triple tuples.
        """
        main = self.main
        lo = _lower_bound2(main, first, second)
        if not self.delta and not self.dead:
            for base in range(3 * lo, len(main), 3):
                if main[base] != first or main[base + 1] != second:
                    return
                yield main[base + 2]
            return
        if self.dead:
            for t in self.scan((first, second)):
                yield t[2]
            return
        # merge the run range with the delta log's matching range
        delta = self.delta
        di = bisect_left(delta, (first, second))
        dn = len(delta)
        n = len(main)
        base = 3 * lo
        while base < n and main[base] == first and main[base + 1] == second:
            value = main[base + 2]
            while di < dn:
                d = delta[di]
                if d[0] != first or d[1] != second or d[2] > value:
                    break
                yield d[2]
                di += 1
            yield value
            base += 3
        while di < dn:
            d = delta[di]
            if d[0] != first or d[1] != second:
                return
            yield d[2]
            di += 1

    def count_prefix(self, prefix: Tuple[int, ...]) -> int:
        """Exact number of live triples extending ``prefix``."""
        main, delta = self.main, self.delta
        if prefix:
            after = _after_prefix(prefix)
            total = _lower_bound(main, after) - _lower_bound(main, prefix)
            total += bisect_left(delta, after) - bisect_left(delta, prefix)
            if self.dead:
                width = len(prefix)
                total -= sum(1 for t in self.dead if t[:width] == prefix)
            return total
        return len(self)

    def scan_between(self, prefix: Tuple[int, ...], lo_value: int,
                     hi_value: int) -> Iterator[EncodedTriple]:
        """Live triples extending ``prefix`` whose next component lies
        in ``[lo_value, hi_value)``, in sorted order.

        The interval-scan primitive: a contiguous identifier range
        (e.g. "a class and all its subclasses" under the semantic
        interval encoding) is answered by two binary searches and one
        forward walk, instead of one point lookup per member.
        """
        main, delta = self.main, self.delta
        lo_key = prefix + (lo_value,)
        hi_key = prefix + (hi_value,)
        lo, hi = _lower_bound(main, lo_key), _lower_bound(main, hi_key)
        dead = self.dead
        if not delta and not dead:
            for base in range(3 * lo, 3 * hi, 3):
                yield (main[base], main[base + 1], main[base + 2])
            return
        di, dn = bisect_left(delta, lo_key), bisect_left(delta, hi_key)
        for i in range(lo, hi):
            base = 3 * i
            t = (main[base], main[base + 1], main[base + 2])
            if dead and t in dead:
                continue
            while di < dn and delta[di] < t:
                yield delta[di]
                di += 1
            yield t
        while di < dn:
            yield delta[di]
            di += 1

    # -- zero-copy block views (the vectorized kernel feed) -------------
    #
    # Every *_view method returns ``None`` when the order holds delta
    # or tombstone state that a block could not represent — callers
    # fall back to the merging scalar scans above.  The semi-naive
    # engine compacts at round boundaries and queries mostly run on
    # merged runs, so the block paths serve the hot traffic.

    def _view(self) -> "memoryview":
        main = self.main
        return memoryview(main) if isinstance(main, array) else main

    def _components(self) -> Tuple["memoryview", ...]:
        """The main run's strided per-component views ``(v0, v1, v2)``.

        Every block search bisects these with the C ``bisect`` instead
        of stepping an interpreted binary search over the flat run.
        """
        cached = self._cviews
        main = self.main
        if cached is not None and cached[0] is main:
            return cached[1]
        view = memoryview(main) if isinstance(main, array) else main
        views = (view[0::3], view[1::3], view[2::3])
        self._cviews = (main, views)
        return views

    def triple_bounds(self, prefix: Tuple[int, ...]) -> Tuple[int, int]:
        """Triple indexes ``(lo, hi)`` of the main-run segment under
        ``prefix`` — two C bisects per prefix component."""
        views = self._components()
        lo, hi = 0, len(self.main) // 3
        for depth, component in enumerate(prefix):
            column = views[depth]
            lo = bisect_left(column, component, lo, hi)
            hi = bisect_left(column, component + 1, lo, hi)
        return lo, hi

    def values_block(self, first: int, second: int
                     ) -> Optional[Union["memoryview", array]]:
        """The sorted live third components under ``(first, second)``
        as one flat buffer — the rule-engine scan shape as a block.

        Clean runs answer with a zero-copy strided view; pending delta
        state merges into a fresh ``array('q')`` (two sorted sources,
        so the sort is a C-level run merge).
        """
        v0, v1, v2 = self._components()
        lo = bisect_left(v0, first, 0, len(v0))
        hi = bisect_left(v0, first + 1, lo)
        lo = bisect_left(v1, second, lo, hi)
        hi = bisect_left(v1, second + 1, lo, hi)
        main_values = v2[lo:hi]
        delta = self.delta
        dead = self.dead
        di = dn = 0
        if delta:
            di = bisect_left(delta, (first, second))
            dn = bisect_left(delta, (first, second + 1), di)
        if di == dn and not dead:
            # pending state lives under other prefixes: this span is
            # still exactly the main run's
            return main_values
        live = ([v for v in main_values
                 if (first, second, v) not in dead]
                if dead else list(main_values))
        if di != dn:
            live.extend(delta[i][2] for i in range(di, dn))
            live.sort()
        return array("q", live)

    def values_reader(self, first: int) -> Callable[[int], Union["memoryview", array]]:
        """A per-``second`` reader with ``first``'s span resolved once.

        The block executor's loops run thousands of
        :meth:`values_block` probes whose first prefix component is a
        plan constant (the predicate, usually); the reader pays its
        two bisects a single time and leaves two per probe.  Only
        valid while the index is read-stable (plan execution never
        interleaves with writes).
        """
        v0, v1, v2 = self._components()
        lo0 = bisect_left(v0, first, 0, len(v0))
        hi0 = bisect_left(v0, first + 1, lo0)
        delta = self.delta
        dead = self.dead
        if not delta and not dead:
            def read(second: int, _bisect=bisect_left) -> "memoryview":
                lo = _bisect(v1, second, lo0, hi0)
                hi = _bisect(v1, second + 1, lo, hi0)
                return v2[lo:hi]

            return read

        # pending state: narrow the delta log to ``first``'s segment
        # once and bucket it by second component, so a probe pays one
        # dict lookup instead of two tuple bisects; the common case
        # (no delta under this exact prefix, no tombstones) still
        # answers with the zero-copy view
        dlo = bisect_left(delta, (first,))
        dhi = bisect_left(delta, (first + 1,), dlo)
        if dlo == dhi and not dead:
            def read(second: int, _bisect=bisect_left) -> "memoryview":
                lo = _bisect(v1, second, lo0, hi0)
                hi = _bisect(v1, second + 1, lo, hi0)
                return v2[lo:hi]

            return read
        pending: Dict[int, List[int]] = {}
        for i in range(dlo, dhi):
            pending.setdefault(delta[i][1], []).append(delta[i][2])

        def read_dirty(second: int, _bisect=bisect_left
                       ) -> Union["memoryview", array]:
            lo = _bisect(v1, second, lo0, hi0)
            hi = _bisect(v1, second + 1, lo, hi0)
            main_values = v2[lo:hi]
            extras = pending.get(second)
            if extras is None and not dead:
                return main_values
            live = ([v for v in main_values
                     if (first, second, v) not in dead]
                    if dead else list(main_values))
            if extras:
                live.extend(extras)
                live.sort()
            return array("q", live)

        return read_dirty

    def prefix_view(self, prefix: Tuple[int, ...]) -> Optional["memoryview"]:
        """Contiguous flat view of the triples extending ``prefix``
        (permuted component order, ``3 * n`` elements)."""
        if self.delta or self.dead:
            return None
        lo, hi = self.triple_bounds(prefix)
        return self._view()[3 * lo:3 * hi]

    def range_view(self, prefix: Tuple[int, ...], lo_value: int,
                   hi_value: int) -> Optional["memoryview"]:
        """Contiguous flat view of the triples extending ``prefix``
        whose next component lies in ``[lo_value, hi_value)`` — the
        interval-scan primitive as one block copy source."""
        if self.delta or self.dead:
            return None
        lo, hi = self.triple_bounds(prefix)
        column = self._components()[len(prefix)]
        lo = bisect_left(column, lo_value, lo, hi)
        hi = bisect_left(column, hi_value, lo, hi)
        return self._view()[3 * lo:3 * hi]

    def seek(self, prefix: Tuple[int, ...], value: int) -> Optional[int]:
        """Smallest component value ``>= value`` directly after
        ``prefix`` among live triples, or ``None`` when exhausted.

        This is the leapfrog primitive: a binary search in the main
        run merged with a binary search in the delta log.
        """
        width = len(prefix)
        key = prefix + (value,)
        main = self.main
        lo = _lower_bound(main, key)
        hi = (_lower_bound(main, _after_prefix(prefix)) if width
              else len(main) // 3)
        main_value: Optional[int] = None
        dead = self.dead
        for i in range(lo, hi):
            base = 3 * i
            t = (main[base], main[base + 1], main[base + 2])
            if dead and t in dead:
                continue
            main_value = t[width]
            break
        delta = self.delta
        j = bisect_left(delta, key)
        if j < len(delta) and delta[j][:width] == prefix:
            delta_value = delta[j][width]
            if main_value is None or delta_value < main_value:
                return delta_value
        return main_value

    def copy(self) -> "_OrderRuns":
        clone = _OrderRuns()
        clone.main = self.main[:]
        clone.delta = list(self.delta)
        clone.dead = set(self.dead)
        return clone


class ColumnarTripleIndex:
    """A set of encoded triples stored as sorted runs, one per order.

    Drop-in alternative to :class:`~repro.rdf.index.TripleIndex`
    (``Graph(backend="columnar")`` selects it); additionally exposes
    the sorted-run primitives (:meth:`scan_order`, :meth:`seek_in`,
    :meth:`order_for`) that the merge/leapfrog join operators build on.
    """

    __slots__ = ("_orders", "_runs", "_size", "_generation")

    def __init__(self, orders: Iterable[str] = DEFAULT_ORDERS):
        order_names = tuple(orders)
        if not order_names:
            raise ValueError("at least one index order is required")
        for name in order_names:
            if name not in ORDER_PERMUTATIONS:
                raise ValueError(f"unknown index order: {name!r}")
        self._orders: Tuple[Tuple[str, IndexOrder], ...] = tuple(
            (name, ORDER_PERMUTATIONS[name]) for name in order_names
        )
        self._runs: Tuple[_OrderRuns, ...] = tuple(
            _OrderRuns() for _ in self._orders)
        self._size = 0
        self._generation = 0

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: EncodedTriple) -> bool:
        __, permutation = self._orders[0]
        a, b, c = permutation
        return self._runs[0].contains((triple[a], triple[b], triple[c]))

    def __iter__(self) -> Iterator[EncodedTriple]:
        __, permutation = self._orders[0]
        inverse = invert_order(permutation)
        x, y, z = inverse
        for t in self._runs[0].scan():
            yield (t[x], t[y], t[z])

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, triple: EncodedTriple) -> bool:
        """Insert ``triple``; return True iff it was not already present."""
        if triple in self:
            return False
        for (__, permutation), runs in zip(self._orders, self._runs):
            a, b, c = permutation
            runs.insert((triple[a], triple[b], triple[c]))
        self._size += 1
        self._maybe_merge()
        return True

    def add_batch(self, triples: Iterable[EncodedTriple]) -> List[EncodedTriple]:
        """Insert many triples at once; return the ones actually new.

        The set-at-a-time insert path: the batch is deduplicated, each
        order receives it pre-sorted, and at most one merge per order
        runs at the end — instead of one delta insertion per triple.
        """
        fresh: List[EncodedTriple] = []
        seen: Set[EncodedTriple] = set()
        if kernels.vectorized():
            # batch membership: one sorted sweep over a single order
            # instead of a per-triple binary search ("fresh" keeps the
            # caller's arrival order either way).  The sweep probes the
            # second order (pos) when present: derived batches cluster
            # by predicate, so consecutive keys share their leading
            # components and the sweep's span caches elide most bisects
            candidates: List[EncodedTriple] = []
            for triple in triples:
                if triple not in seen:
                    seen.add(triple)
                    candidates.append(triple)
            if not candidates:
                return fresh
            probe = 1 if len(self._orders) > 1 else 0
            (__, permutation) = self._orders[probe]
            a, b, c = permutation
            pairs = sorted([((t[a], t[b], t[c]), t) for t in candidates])
            flags = self._runs[probe].contains_sorted(
                [key for key, __ in pairs])
            present = {t for (__, t), flag in zip(pairs, flags) if flag}
            fresh = [t for t in candidates if t not in present]
            if not fresh:
                return fresh
            # the pair sweep already produced the probe order's sorted
            # batch; only the remaining orders pay a sort
            for i, ((__, perm), runs) in enumerate(zip(self._orders,
                                                       self._runs)):
                if i == probe:
                    batch = [key for (key, t) in pairs if t not in present]
                else:
                    a, b, c = perm
                    batch = sorted([(t[a], t[b], t[c]) for t in fresh])
                runs.insert_sorted_batch(batch)
            self._size += len(fresh)
            self._maybe_merge()
            return fresh
        else:
            for triple in triples:
                if triple in seen or triple in self:
                    continue
                seen.add(triple)
                fresh.append(triple)
        if not fresh:
            return fresh
        for (__, permutation), runs in zip(self._orders, self._runs):
            a, b, c = permutation
            runs.insert_sorted_batch(
                sorted((t[a], t[b], t[c]) for t in fresh))
        self._size += len(fresh)
        self._maybe_merge()
        return fresh

    def bulk_load(self, triples: Iterable[EncodedTriple]) -> int:
        """Load a deduplicated triple set into this *empty* index.

        Skips the per-triple presence checks of :meth:`add_batch` and
        writes each order's main run directly — one sort per order, no
        delta log.  The re-encoding path of the semantic interval
        encoding uses this: a bijective remap of an existing index's
        triple set is duplicate-free by construction.
        """
        if self._size:
            raise ValueError("bulk_load requires an empty index")
        batch = triples if isinstance(triples, list) else list(triples)
        for (__, permutation), runs in zip(self._orders, self._runs):
            a, b, c = permutation
            run = array("q")
            for t in sorted((t[a], t[b], t[c]) for t in batch):
                run.extend(t)
            runs.main = run
        self._size = len(batch)
        self._generation += 1
        return self._size

    def discard(self, triple: EncodedTriple) -> bool:
        """Remove ``triple``; return True iff it was present."""
        if triple not in self:
            return False
        for (__, permutation), runs in zip(self._orders, self._runs):
            a, b, c = permutation
            runs.remove((triple[a], triple[b], triple[c]))
        self._size -= 1
        self._maybe_merge()
        return True

    def clear(self) -> None:
        self._runs = tuple(_OrderRuns() for _ in self._orders)
        self._size = 0
        self._generation += 1

    def _maybe_merge(self) -> None:
        merged = 0
        for runs in self._runs:
            if runs.should_merge():
                runs.merge()
                merged += 1
        if merged:
            self._generation += 1
            get_metrics().counter("columnar.merges").inc(merged)

    def compact(self) -> int:
        """Merge every order's delta log and tombstones into its run.

        Bulk consumers call this at natural batch boundaries (the
        set-at-a-time engine compacts between semi-naive rounds) so
        the round's scans all hit the single-run fast path instead of
        merging a delta log per lookup.  Returns the number of orders
        that actually compacted.
        """
        merged = 0
        for runs in self._runs:
            if runs.delta or runs.dead:
                runs.merge()
                merged += 1
        if merged:
            self._generation += 1
            get_metrics().counter("columnar.merges").inc(merged)
        return merged

    # ------------------------------------------------------------------
    # pattern matching (TripleIndex-compatible surface)
    # ------------------------------------------------------------------

    def match(self, s: Optional[int], p: Optional[int],
              o: Optional[int]) -> Iterator[EncodedTriple]:
        """Iterate triples matching the pattern (``None`` = wildcard)."""
        pattern = (s, p, o)
        bound = frozenset(i for i, v in enumerate(pattern) if v is not None)
        if len(bound) == 3:
            if (s, p, o) in self:  # type: ignore[comparison-overlap]
                yield (s, p, o)  # type: ignore[misc]
            return
        order_index, prefix_len = self._best_order(bound)
        __, permutation = self._orders[order_index]
        inverse = invert_order(permutation)
        x, y, z = inverse
        prefix = tuple(pattern[permutation[i]] for i in range(prefix_len))
        residual = [i for i in bound if permutation.index(i) >= prefix_len]
        for t in self._runs[order_index].scan(prefix):  # type: ignore[arg-type]
            triple = (t[x], t[y], t[z])
            if residual and any(triple[i] != pattern[i] for i in residual):
                continue
            yield triple

    def count(self, s: Optional[int] = None, p: Optional[int] = None,
              o: Optional[int] = None) -> int:
        """Exact number of triples matching the pattern."""
        pattern = (s, p, o)
        bound = frozenset(i for i, v in enumerate(pattern) if v is not None)
        if not bound:
            return self._size
        if len(bound) == 3:
            return 1 if (s, p, o) in self else 0  # type: ignore[comparison-overlap]
        order_index, prefix_len = self._best_order(bound)
        if prefix_len == len(bound):
            __, permutation = self._orders[order_index]
            prefix = tuple(pattern[permutation[i]] for i in range(prefix_len))
            return self._runs[order_index].count_prefix(prefix)  # type: ignore[arg-type]
        return sum(1 for __ in self.match(s, p, o))

    # ------------------------------------------------------------------
    # sorted-run primitives for the join operators
    # ------------------------------------------------------------------

    def order_for(self, bound: Iterable[int],
                  next_position: Optional[int] = None) -> Optional[int]:
        """Index of an order whose permutation starts with the ``bound``
        positions (in any arrangement) — and, when ``next_position`` is
        given, continues with exactly that position.  ``None`` when the
        configured layout cannot serve the request (the caller falls
        back to scan-and-filter).
        """
        bound_set = frozenset(bound)
        width = len(bound_set)
        for index, (__, permutation) in enumerate(self._orders):
            if frozenset(permutation[:width]) != bound_set:
                continue
            if next_position is None or permutation[width] == next_position:
                return index
        return None

    def permutation(self, order_index: int) -> IndexOrder:
        return self._orders[order_index][1]

    def scan_order(self, order_index: int,
                   prefix: Tuple[int, ...] = ()) -> Iterator[EncodedTriple]:
        """Sorted triples (in the order's permuted space) under ``prefix``."""
        return self._runs[order_index].scan(prefix)

    def values_order(self, order_index: int, first: int,
                     second: int) -> Iterator[int]:
        """Sorted last components under a full two-component prefix."""
        return self._runs[order_index].scan_values(first, second)

    def scan_order_between(self, order_index: int, prefix: Tuple[int, ...],
                           lo: int, hi: int) -> Iterator[EncodedTriple]:
        """Sorted triples under ``prefix`` whose next component lies in
        ``[lo, hi)`` — the identifier-interval range scan."""
        return self._runs[order_index].scan_between(prefix, lo, hi)

    def seek_in(self, order_index: int, prefix: Tuple[int, ...],
                value: int) -> Optional[int]:
        """Leapfrog seek: smallest next-component value >= ``value``."""
        return self._runs[order_index].seek(prefix, value)

    # -- block views (``None`` when delta state forces the scalar path) --

    def values_block_order(self, order_index: int, first: int,
                           second: int) -> Union["memoryview", array]:
        """Sorted live last components under a full two-component
        prefix as one flat buffer (zero-copy view on clean runs)."""
        return self._runs[order_index].values_block(first, second)

    def values_block_fn(self, order_index: int
                        ) -> Callable[[int, int],
                                      Union["memoryview", array]]:
        """The order's bound :meth:`values_block_order` core — block
        loops resolve it once instead of paying two dispatches per
        probe."""
        return self._runs[order_index].values_block

    def values_reader_order(self, order_index: int, first: int
                            ) -> Callable[[int], Union["memoryview", array]]:
        """A :meth:`values_block_order` specialization with ``first``
        resolved once — for block loops over a constant component."""
        return self._runs[order_index].values_reader(first)

    def view_order(self, order_index: int,
                   prefix: Tuple[int, ...] = ()) -> Optional["memoryview"]:
        """Contiguous flat view of the run under ``prefix``, or ``None``."""
        return self._runs[order_index].prefix_view(prefix)

    def range_view_order(self, order_index: int, prefix: Tuple[int, ...],
                         lo: int, hi: int) -> Optional["memoryview"]:
        """Contiguous flat view of the run's ``[lo, hi)`` identifier
        interval under ``prefix``, or ``None``."""
        return self._runs[order_index].range_view(prefix, lo, hi)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def best_order(self, bound: frozenset) -> Tuple[int, int]:
        """The order with the longest prefix of bound positions, as
        ``(order_index, usable_prefix_length)``.

        Public because the join compiler picks scan orders *once* per
        plan from the statically-known bound positions, instead of
        re-deriving them per lookup like :meth:`match` must.
        """
        return self._best_order(bound)

    def _best_order(self, bound: frozenset) -> Tuple[int, int]:
        best = (0, 0)
        for i, (__, permutation) in enumerate(self._orders):
            prefix = 0
            while prefix < 3 and permutation[prefix] in bound:
                prefix += 1
            prefix = min(prefix, len(bound))
            if prefix > best[1]:
                best = (i, prefix)
        return best

    @property
    def order_names(self) -> Tuple[str, ...]:
        return tuple(name for name, __ in self._orders)

    @property
    def generation(self) -> int:
        """Bumped whenever any order merges or compacts its runs."""
        return self._generation

    def run_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-order layout statistics (for dashboards and tests)."""
        return {
            name: {"main": len(runs.main) // 3, "delta": len(runs.delta),
                   "dead": len(runs.dead)}
            for (name, __), runs in zip(self._orders, self._runs)
        }

    def copy(self) -> "ColumnarTripleIndex":
        clone = ColumnarTripleIndex(self.order_names)
        clone._runs = tuple(runs.copy() for runs in self._runs)
        clone._size = self._size
        clone._generation = self._generation
        return clone

    # ------------------------------------------------------------------
    # durable storage interchange (repro.storage)
    # ------------------------------------------------------------------

    def export_runs(self) -> Dict[str, Run]:
        """Each order's main run as one flat buffer, compacted first.

        The buffers are exactly what the run-file format stores, so
        the snapshot writer dumps them without transformation.
        Compaction folds the delta log and tombstones in, which
        mutates nothing observable (same triple set, fresher layout).
        """
        self.compact()
        return {name: runs.main
                for (name, __), runs in zip(self._orders, self._runs)}

    @classmethod
    def from_sorted_runs(cls, orders: Iterable[str],
                         runs: Dict[str, Run],
                         size: int) -> "ColumnarTripleIndex":
        """Rebuild an index around already-sorted main runs.

        ``runs`` maps each order name to its flat buffer — typically
        the zero-copy memoryviews :func:`repro.storage.runfiles.
        open_run_file` returns, so opening a snapshot costs no triple
        materialization at all.  The buffers must hold the same triple
        set per order, sorted in that order's permuted space (the
        invariant :meth:`export_runs` guarantees).
        """
        index = cls(orders)
        for (name, __), order_runs in zip(index._orders, index._runs):
            order_runs.main = runs[name]
        index._size = size
        return index
