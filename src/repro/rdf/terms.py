"""RDF term model: URIs, literals, blank nodes and query variables.

The paper's data model (Section II-A) manipulates *well-formed* RDF
triples built from uniform resource identifiers (URIs), typed or
un-typed literals, and blank nodes.  Query triple patterns additionally
allow variables in the subject, property and object positions.

Terms are immutable value objects with precomputed hashes: the store,
the saturation engine and the reformulation engine all hash terms on
every operation, so hashing must be O(1) after construction.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "Term",
    "URI",
    "Literal",
    "BlankNode",
    "Variable",
    "RDFTerm",
    "PatternTerm",
    "fresh_blank",
    "fresh_variable",
]


class Term:
    """Abstract base class for every RDF term and query variable.

    Concrete subclasses are :class:`URI`, :class:`Literal`,
    :class:`BlankNode` and :class:`Variable`.  All are immutable and
    totally ordered (ordering is by *sort key*, used to canonicalize
    BGPs and answer sets deterministically).
    """

    __slots__ = ("_hash",)

    #: Small integer used as the major component of the sort key so
    #: heterogeneous term collections order deterministically.
    _sort_rank = 0

    def sort_key(self) -> tuple:
        raise NotImplementedError

    def n3(self) -> str:
        """Render the term in N-Triples/SPARQL surface syntax."""
        raise NotImplementedError

    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    def is_constant(self) -> bool:
        return not isinstance(self, Variable)

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class URI(Term):
    """A uniform resource identifier.

    URIs name resources, classes and properties alike; the RDF fragment
    considered in the paper "blurs the distinction between constants and
    classes/properties", so the same :class:`URI` value may appear in any
    triple position.
    """

    __slots__ = ("value",)
    _sort_rank = 1

    def __init__(self, value: str):
        if not value:
            raise ValueError("URI value must be a non-empty string")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("URI", value)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("URI is immutable")

    def __reduce__(self):
        # The __setattr__ guard breaks default slot unpickling; rebuild
        # through the constructor instead (pickle memoizes repeats).
        return (URI, (self.value,))

    def __eq__(self, other) -> bool:
        return isinstance(other, URI) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"URI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        return f"<{self.value}>"

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.value)

    @property
    def local_name(self) -> str:
        """Heuristic local name: the part after the last '#' or '/'."""
        value = self.value
        for sep in ("#", "/"):
            if sep in value:
                return value.rsplit(sep, 1)[1]
        return value


class Literal(Term):
    """A typed or un-typed (plain) RDF literal.

    ``datatype`` is a :class:`URI` or ``None``; ``language`` is a BCP-47
    tag or ``None``.  A literal cannot carry both a datatype and a
    language tag (RDF 1.0 well-formedness, which the paper assumes).
    """

    __slots__ = ("lexical", "datatype", "language")
    _sort_rank = 2

    def __init__(self, lexical: str, datatype: "URI | None" = None,
                 language: "str | None" = None):
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot have both a datatype and a language tag")
        if datatype is not None and not isinstance(datatype, URI):
            raise TypeError("datatype must be a URI")
        object.__setattr__(self, "lexical", str(lexical))
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language.lower() if language else None)
        object.__setattr__(
            self, "_hash", hash(("Literal", self.lexical, self.datatype, self.language))
        )

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Literal is immutable")

    def __reduce__(self):
        return (Literal, (self.lexical, self.datatype, self.language))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.datatype is not None:
            return f"Literal({self.lexical!r}, datatype={self.datatype!r})"
        if self.language is not None:
            return f"Literal({self.lexical!r}, language={self.language!r})"
        return f"Literal({self.lexical!r})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.datatype is not None:
            return f'"{escaped}"^^{self.datatype.n3()}'
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        return f'"{escaped}"'

    def sort_key(self) -> tuple:
        return (
            self._sort_rank,
            self.lexical,
            self.datatype.value if self.datatype else "",
            self.language or "",
        )

    def to_python(self) -> object:
        """Best-effort conversion to a Python value based on the datatype."""
        from .namespaces import XSD

        if self.datatype in (XSD.integer, XSD.int, XSD.long):
            return int(self.lexical)
        if self.datatype in (XSD.decimal, XSD.double, XSD.float):
            return float(self.lexical)
        if self.datatype == XSD.boolean:
            return self.lexical in ("true", "1")
        return self.lexical


class BlankNode(Term):
    """A blank node: an unknown URI or literal (existential marker).

    Blank node identity is purely local to a graph; two blank nodes with
    the same label in the same graph are the same node.  Saturation is
    unique *up to blank node renaming* (Section II-A), which the test
    suite checks via canonical relabeling.
    """

    __slots__ = ("label",)
    _sort_rank = 3

    def __init__(self, label: str):
        if not label:
            raise ValueError("blank node label must be non-empty")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("BlankNode", label)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("BlankNode is immutable")

    def __reduce__(self):
        return (BlankNode, (self.label,))

    def __eq__(self, other) -> bool:
        return isinstance(other, BlankNode) and other.label == self.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BlankNode({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        return f"_:{self.label}"

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.label)


class Variable(Term):
    """A query variable, as in SPARQL's ``?x``.

    Variables only occur inside triple *patterns*; a well-formed RDF
    graph never contains one.  Reformulation introduces fresh
    non-distinguished variables while rewriting (Section II-B).
    """

    __slots__ = ("name",)
    _sort_rank = 4

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Variable is immutable")

    def __reduce__(self):
        return (Variable, (self.name,))

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"

    def n3(self) -> str:
        return f"?{self.name}"

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.name)


#: A term allowed in a well-formed RDF triple position.
RDFTerm = Union[URI, Literal, BlankNode]

#: A term allowed in a query triple pattern position.
PatternTerm = Union[URI, Literal, BlankNode, Variable]


_FRESH_BLANK_COUNTER = 0
_FRESH_VARIABLE_COUNTER = 0


def fresh_blank(prefix: str = "b") -> BlankNode:
    """Return a blank node with a globally fresh label."""
    global _FRESH_BLANK_COUNTER
    _FRESH_BLANK_COUNTER += 1
    return BlankNode(f"{prefix}{_FRESH_BLANK_COUNTER}")


def fresh_variable(prefix: str = "v") -> Variable:
    """Return a variable with a globally fresh name.

    Used by the reformulation engine to introduce non-distinguished
    variables that cannot capture the query's own variables.
    """
    global _FRESH_VARIABLE_COUNTER
    _FRESH_VARIABLE_COUNTER += 1
    return Variable(f"_{prefix}{_FRESH_VARIABLE_COUNTER}")
