"""Performance analysis: cost measurement and the Figure 3 threshold
model quantifying when saturation amortizes over reformulation."""

from .measure import Timing, best_of, time_call
from .model import (Calibration, GraphStatistics, calibrate,
                    estimate_inferred_triples, estimate_query_cost,
                    estimate_saturation_seconds, quick_recommendation)
from .thresholds import (QueryCosts, QueryThresholds, ThresholdReport,
                         UPDATE_KINDS, analyze_thresholds, compute_threshold)

__all__ = [
    "Timing", "time_call", "best_of",
    "GraphStatistics", "Calibration", "calibrate",
    "estimate_inferred_triples", "estimate_saturation_seconds",
    "estimate_query_cost", "quick_recommendation",
    "QueryCosts", "QueryThresholds", "ThresholdReport",
    "compute_threshold", "analyze_thresholds", "UPDATE_KINDS",
]
