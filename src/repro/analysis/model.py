"""Analytic cost estimation: choosing a strategy *without* running it.

The advisor of :mod:`repro.db.advisor` measures the actual engines on
the actual workload — accurate, but it costs a saturation run per
decision.  This module provides the estimation route the paper's
§II-D "automatizing the choice" problem ultimately needs: predict the
relevant quantities from cheap statistics.

* :class:`GraphStatistics` — one pass over the graph: instance/type
  triple counts, per-property usage, schema shape.
* :func:`estimate_inferred_triples` — how big `G∞ \\ G` will be,
  by *sampling*: for a random sample of instance triples, count the
  derivations the schema closures assign to each, and scale.  With
  ``sample_size >= |instance|`` the estimate is an exact upper bound of
  derivation counts (duplicates across triples make it an upper bound
  of the deduplicated closure size).
* :func:`calibrate` — measures this machine's per-derivation cost once
  on a synthetic micrograph, yielding a seconds-per-derivation unit.
* :func:`estimate_saturation_seconds` — the two combined.
* :func:`quick_recommendation` — an advisor that never saturates:
  compares the estimated saturation+maintenance bill against the
  estimated reformulated-evaluation bill (UCQ size × per-conjunct scan
  estimate from exact index counts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Dict, Optional, Sequence, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import Literal
from ..rdf.triples import Triple
from ..reasoning.reformulation import reformulate
from ..schema import SCHEMA_PROPERTIES, Schema
from ..sparql.ast import BGPQuery
from ..sparql.optimizer import estimate_cardinality

__all__ = ["GraphStatistics", "Calibration", "calibrate",
           "estimate_inferred_triples", "estimate_saturation_seconds",
           "estimate_query_cost", "quick_recommendation"]


@dataclass
class GraphStatistics:
    """Cheap one-pass statistics of a graph."""

    total_triples: int = 0
    schema_triples: int = 0
    type_triples: int = 0
    property_triples: int = 0          # non-type instance triples
    distinct_properties: int = 0
    classes: int = 0
    properties_declared: int = 0
    class_depth: int = 0
    property_depth: int = 0

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphStatistics":
        from ..schema import validate_schema

        stats = cls()
        properties = set()
        for triple in graph:
            stats.total_triples += 1
            if triple.p in SCHEMA_PROPERTIES:
                stats.schema_triples += 1
            elif triple.p == RDF.type:
                stats.type_triples += 1
            else:
                stats.property_triples += 1
            properties.add(triple.p)
        stats.distinct_properties = len(properties)
        report = validate_schema(Schema.from_graph(graph))
        stats.classes = report.class_count
        stats.properties_declared = report.property_count
        stats.class_depth = report.class_depth
        stats.property_depth = report.property_depth
        return stats


def _derivations_for(triple: Triple, schema: Schema) -> int:
    """Number of ρdf conclusions one instance triple contributes
    (before global deduplication)."""
    if triple.p in SCHEMA_PROPERTIES:
        return 0
    if triple.p == RDF.type:
        return len(schema.superclasses(triple.o))
    count = len(schema.superproperties(triple.p))
    count += len(schema.effective_domains(triple.p))
    if not isinstance(triple.o, Literal):
        count += len(schema.effective_ranges(triple.p))
    return count


def estimate_inferred_triples(graph: Graph, sample_size: int = 300,
                              seed: int = 0,
                              schema: Optional[Schema] = None) -> float:
    """Estimated ``|G∞| - |G|`` under ρdf, by sampling.

    Counts, for a uniform sample of instance triples, the derivations
    the schema closures assign to each, and scales by the population.
    This estimates the *derivation* count, an upper bound on the new
    triples (conclusions repeat across triples); on most-specific-typed
    data (LUBM-style) the two are close.  The schema-level closure
    (transitive edges) is added exactly — it is tiny to compute.
    """
    if schema is None:
        schema = Schema.from_graph(graph)
    instance = [t for t in graph if t.p not in SCHEMA_PROPERTIES]
    if not instance:
        return 0.0
    schema_closure_new = sum(
        1 for t in schema.closure_triples() if t not in graph)
    if sample_size >= len(instance):
        sample: Sequence[Triple] = instance
        scale = 1.0
    else:
        sample = Random(seed).sample(instance, sample_size)
        scale = len(instance) / sample_size
    derivations = sum(_derivations_for(t, schema) for t in sample)
    return schema_closure_new + scale * derivations


@dataclass(frozen=True)
class Calibration:
    """Machine-specific unit costs (seconds)."""

    seconds_per_derivation: float
    seconds_per_scan_row: float

    def describe(self) -> str:
        return (f"derivation: {self.seconds_per_derivation * 1e6:.2f} µs, "
                f"scan row: {self.seconds_per_scan_row * 1e6:.2f} µs")


def calibrate(size: int = 400, repeat: int = 3) -> Calibration:
    """Measure this machine's unit costs on a synthetic micrograph.

    Builds a chain-schema graph with ``size`` typed individuals,
    saturates it (per-derivation cost) and scans it (per-row cost).
    """
    from ..rdf.namespaces import Namespace
    from ..reasoning.saturation import saturate

    ns = Namespace("http://repro.example.org/calibration#")
    graph = Graph()
    depth = 6
    for level in range(depth):
        graph.add(Triple(ns.term(f"L{level}"), RDFS.subClassOf,
                         ns.term(f"L{level + 1}")))
    for i in range(size):
        graph.add(Triple(ns.term(f"i{i}"), RDF.type, ns.term("L0")))

    best_saturation = float("inf")
    inferred = 0
    for __ in range(repeat):
        started = time.perf_counter()
        result = saturate(graph)
        best_saturation = min(best_saturation,
                              time.perf_counter() - started)
        inferred = result.inferred
    per_derivation = best_saturation / max(inferred, 1)

    best_scan = float("inf")
    for __ in range(repeat):
        started = time.perf_counter()
        rows = sum(1 for __t in graph.triples(None, RDF.type, None))
        best_scan = min(best_scan, time.perf_counter() - started)
    per_row = best_scan / max(size, 1)
    return Calibration(seconds_per_derivation=per_derivation,
                       seconds_per_scan_row=per_row)


def estimate_saturation_seconds(graph: Graph, calibration: Calibration,
                                sample_size: int = 300,
                                seed: int = 0) -> float:
    """Estimated wall-clock cost of saturating ``graph``."""
    inferred = estimate_inferred_triples(graph, sample_size, seed)
    return inferred * calibration.seconds_per_derivation


def estimate_query_cost(graph: Graph, query: BGPQuery,
                        calibration: Calibration,
                        schema: Optional[Schema] = None,
                        reformulated: bool = False) -> float:
    """Estimated evaluation cost of ``query``.

    Uses the optimizer's exact-count cardinality estimates for the
    cheapest atom (the driver scan); reformulated cost sums the same
    estimate over every conjunct of the UCQ.
    """
    if schema is None:
        schema = Schema.from_graph(graph)

    def bgp_cost(bgp: BGPQuery) -> float:
        driver = min(estimate_cardinality(graph, pattern)
                     for pattern in bgp.patterns)
        return max(driver, 1.0) * calibration.seconds_per_scan_row \
            * len(bgp.patterns)

    if not reformulated:
        return bgp_cost(query)
    reformulation = reformulate(query, schema)
    total = 0.0
    for variant in reformulation.variants:
        for alternatives in variant.alternatives:
            for alternative in alternatives:
                total += max(estimate_cardinality(graph, alternative), 1.0) \
                    * calibration.seconds_per_scan_row
    return total


def quick_recommendation(graph: Graph,
                         queries_per_period: Sequence[Tuple[BGPQuery, float]],
                         updates_per_period: float = 0.0,
                         calibration: Optional[Calibration] = None,
                         sample_size: int = 300) -> Dict[str, object]:
    """Estimate-only strategy advice (never saturates the graph).

    Models the saturation regime as: amortized saturation cost per
    period (one maintenance ≈ update share of a saturation) plus cheap
    per-query scans; the reformulation regime as the summed UCQ scan
    estimates.  Returns the decision plus the numbers behind it.
    """
    if calibration is None:
        calibration = calibrate()
    schema = Schema.from_graph(graph)
    saturation_cost = estimate_saturation_seconds(graph, calibration,
                                                  sample_size)
    # a small update batch re-derives a small share; model it as 2%
    # of a full saturation per batch (measured batches of 10 on the
    # bundled workloads fall between 1% and 5%)
    maintenance_bill = updates_per_period * saturation_cost * 0.02

    saturated_query_bill = 0.0
    reformulated_query_bill = 0.0
    for query, rate in queries_per_period:
        saturated_query_bill += rate * estimate_query_cost(
            graph, query, calibration, schema, reformulated=False)
        reformulated_query_bill += rate * estimate_query_cost(
            graph, query, calibration, schema, reformulated=True)

    saturation_total = maintenance_bill + saturated_query_bill
    reformulation_total = reformulated_query_bill
    recommended = ("saturation" if saturation_total <= reformulation_total
                   else "reformulation")
    return {
        "recommended": recommended,
        "estimated_saturation_seconds": saturation_cost,
        "estimated_inferred_triples": estimate_inferred_triples(
            graph, sample_size),
        "saturation_period_seconds": saturation_total,
        "reformulation_period_seconds": reformulation_total,
        "calibration": calibration,
    }
