"""Cost measurement utilities for the threshold analysis.

All costs feeding the Figure 3 reproduction are wall-clock timings of
the actual engines on the actual workload, measured with a
best-of-``repeat`` discipline (the standard way to suppress scheduler
noise on a shared machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from ..obs import span

__all__ = ["Timing", "time_call", "best_of"]

T = TypeVar("T")


@dataclass(frozen=True)
class Timing:
    """A measured duration plus the measured call's return value."""

    seconds: float
    result: object = None

    @property
    def millis(self) -> float:
        return self.seconds * 1000.0


def time_call(fn: Callable[[], T], label: str = "measure.call") -> Timing:
    """Time a single call of ``fn`` (recorded as an obs span)."""
    with span(label) as sp:
        result = fn()
    return Timing(sp.duration, result)


def best_of(fn: Callable[[], T], repeat: int = 3) -> Timing:
    """The minimum duration over ``repeat`` calls (last result kept).

    Minimum — not mean — because timing noise is strictly additive:
    the fastest observation is the closest to the true cost.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best: Optional[Timing] = None
    for __ in range(repeat):
        timing = time_call(fn)
        if best is None or timing.seconds < best.seconds:
            best = Timing(timing.seconds, timing.result)
    assert best is not None
    return best
