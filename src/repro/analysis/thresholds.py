"""Saturation thresholds: the quantitative heart of the paper (Fig. 3).

For a query ``q`` the *saturation threshold* is the minimum number of
runs ``n`` such that paying the one-time saturation cost and then
evaluating ``q`` on ``G∞`` ``n`` times is cheaper than answering via
reformulation ``n`` times:

    C_sat + n · C_eval∞(q)  ≤  n · C_ref(q)
    ⟹  n  =  ⌈ C_sat / (C_ref(q) − C_eval∞(q)) ⌉

and analogously the *threshold for an instance (or schema) insertion
(or deletion)* replaces ``C_sat`` with the cost of *maintaining* the
saturation after that update.  When reformulated answering is at least
as fast as evaluating on the saturated graph, saturation never
amortizes and the threshold is infinite.

The paper's headline observation — reproduced by
``benchmarks/bench_fig3_thresholds.py`` — is that these thresholds
vary by orders of magnitude across queries *on the same database*, so
neither technique dominates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..rdf.graph import Graph
from ..reasoning.incremental import CountingReasoner, DRedReasoner
from ..reasoning.reformulation import reformulate
from ..reasoning.rulesets import RDFS_DEFAULT, RuleSet
from ..reasoning.saturation import saturate
from ..schema import Schema
from ..sparql.ast import BGPQuery
from ..sparql.evaluator import evaluate, evaluate_reformulation
from ..workloads.updates import (UpdateBatch, instance_deletions,
                                 instance_insertions, schema_deletions,
                                 schema_insertions)
from .measure import best_of

__all__ = ["QueryCosts", "QueryThresholds", "ThresholdReport",
           "compute_threshold", "analyze_thresholds", "UPDATE_KINDS"]

#: The four update kinds of Figure 3, in its legend's order.
UPDATE_KINDS: Tuple[str, ...] = ("instance-insert", "instance-delete",
                                 "schema-insert", "schema-delete")


def compute_threshold(fixed_cost: float, per_run_saturated: float,
                      per_run_reformulated: float) -> float:
    """The minimum run count amortizing ``fixed_cost``; ``inf`` when
    reformulation is never slower per run."""
    margin = per_run_reformulated - per_run_saturated
    if margin <= 0:
        return math.inf
    if fixed_cost <= 0:
        return 1.0
    return float(math.ceil(fixed_cost / margin))


@dataclass
class QueryCosts:
    """Measured per-query costs (seconds)."""

    query_id: str
    eval_saturated: float        # evaluating q on G∞
    eval_reformulated: float     # reformulating + evaluating qref on G
    reformulation_only: float    # just producing qref
    ucq_size: int
    answers: int


@dataclass
class QueryThresholds:
    """Figure 3's five bars for one query."""

    query_id: str
    saturation: float
    by_update: Dict[str, float] = field(default_factory=dict)

    def series(self) -> List[Tuple[str, float]]:
        rows = [("saturation", self.saturation)]
        rows.extend((kind, self.by_update[kind]) for kind in UPDATE_KINDS
                    if kind in self.by_update)
        return rows


@dataclass
class ThresholdReport:
    """The complete Figure 3 dataset: global costs + per-query bars."""

    graph_size: int
    saturated_size: int
    saturation_cost: float
    maintenance_costs: Dict[str, float]
    query_costs: List[QueryCosts]
    thresholds: List[QueryThresholds]

    def to_table(self) -> str:
        """Fixed-width table, one row per query, one column per series."""
        header = ["query", "ucq", "eval(G∞) ms", "ref(G) ms", "saturation"]
        header += [kind for kind in UPDATE_KINDS]
        rows: List[List[str]] = []
        costs_by_id = {c.query_id: c for c in self.query_costs}
        for entry in self.thresholds:
            costs = costs_by_id[entry.query_id]
            row = [entry.query_id, str(costs.ucq_size),
                   f"{costs.eval_saturated * 1000:.2f}",
                   f"{costs.eval_reformulated * 1000:.2f}",
                   _fmt_threshold(entry.saturation)]
            row += [_fmt_threshold(entry.by_update.get(kind, math.nan))
                    for kind in UPDATE_KINDS]
            rows.append(row)
        widths = [max(len(header[i]), *(len(r[i]) for r in rows))
                  for i in range(len(header))]
        lines = [" | ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Machine-readable export (for external plotting): one row per
        query, ``inf`` rendered literally."""
        header = ["query", "ucq_size", "answers", "eval_saturated_ms",
                  "eval_reformulated_ms", "threshold_saturation"]
        header += [f"threshold_{kind.replace('-', '_')}"
                   for kind in UPDATE_KINDS]
        lines = [",".join(header)]
        costs_by_id = {c.query_id: c for c in self.query_costs}
        for entry in self.thresholds:
            costs = costs_by_id[entry.query_id]
            row = [entry.query_id, str(costs.ucq_size), str(costs.answers),
                   f"{costs.eval_saturated * 1000:.4f}",
                   f"{costs.eval_reformulated * 1000:.4f}",
                   _csv_number(entry.saturation)]
            row += [_csv_number(entry.by_update.get(kind, math.nan))
                    for kind in UPDATE_KINDS]
            lines.append(",".join(row))
        return "\n".join(lines)

    def to_ascii_chart(self, height: int = 12) -> str:
        """A log-scale ASCII rendering of Figure 3's bar chart."""
        series = ["S", "ii", "id", "si", "sd"]
        values: List[List[float]] = []
        for entry in self.thresholds:
            bars = [entry.saturation]
            bars += [entry.by_update.get(kind, math.nan) for kind in UPDATE_KINDS]
            values.append(bars)
        finite = [v for bars in values for v in bars
                  if v not in (math.inf,) and not math.isnan(v) and v > 0]
        top = max(finite) if finite else 1.0
        max_log = max(1.0, math.log10(top))
        lines: List[str] = []
        for level in range(height, -1, -1):
            cutoff = max_log * level / height
            label = f"1e{cutoff:4.1f} |" if level % 3 == 0 else "       |"
            cells: List[str] = []
            for bars in values:
                group = ""
                for value in bars:
                    if value == math.inf:
                        group += "^"  # off the chart: never amortizes
                    elif math.isnan(value) or value <= 0:
                        group += " "
                    elif math.log10(max(value, 1.0)) >= cutoff:
                        group += "#"
                    else:
                        group += " "
                cells.append(group)
            lines.append(label + " " + "  ".join(cells))
        footer = "       +" + "-" * (len(self.thresholds) * 7)
        ids = "        " + "  ".join(e.query_id.ljust(5)[:5]
                                     for e in self.thresholds)
        legend = ("  bars per query: S=saturation, ii/id=instance ins/del, "
                  "si/sd=schema ins/del; ^ = infinite")
        return "\n".join(lines + [footer, ids, legend])

    def spread_orders_of_magnitude(self) -> float:
        """How many orders of magnitude the finite thresholds span —
        the paper reports 'up to 7' on its workload."""
        finite = [v for entry in self.thresholds
                  for __, v in entry.series()
                  if v != math.inf and v > 0]
        if not finite:
            return 0.0
        return math.log10(max(finite)) - math.log10(min(finite))


def _csv_number(value: float) -> str:
    if math.isnan(value):
        return ""
    if value == math.inf:
        return "inf"
    return str(int(value))


def _fmt_threshold(value: float) -> str:
    if math.isnan(value):
        return "-"
    if value == math.inf:
        return "inf"
    return f"{int(value):,}"


def analyze_thresholds(graph: Graph,
                       queries: Sequence[Tuple[str, BGPQuery]],
                       ruleset: RuleSet = RDFS_DEFAULT,
                       update_size: int = 10,
                       maintenance: str = "dred",
                       repeat: int = 3,
                       seed: int = 0) -> ThresholdReport:
    """Measure every cost of Figure 3 on ``graph`` and ``queries``.

    ``maintenance`` picks the incremental algorithm whose costs define
    the update thresholds (``"dred"`` or ``"counting"``);
    ``update_size`` is the batch size of each update kind.
    """
    saturation_timing = best_of(lambda: saturate(graph, ruleset), repeat)
    saturated = saturation_timing.result.graph  # type: ignore[union-attr]

    schema = Schema.from_graph(graph)
    closed = graph.copy()
    closed.update(schema.closure_triples())

    reasoner_factory = (DRedReasoner if maintenance == "dred"
                        else CountingReasoner)

    batches: Dict[str, UpdateBatch] = {
        "instance-insert": instance_insertions(graph, update_size, seed),
        "instance-delete": instance_deletions(graph, update_size, seed),
        "schema-insert": schema_insertions(graph, update_size, seed),
        "schema-delete": schema_deletions(graph, update_size, seed),
    }
    maintenance_costs: Dict[str, float] = {
        kind: _measure_maintenance(reasoner_factory, graph, ruleset,
                                   batch, repeat)
        for kind, batch in batches.items()
    }

    query_costs: List[QueryCosts] = []
    thresholds: List[QueryThresholds] = []
    for query_id, query in queries:
        eval_sat = best_of(lambda: evaluate(saturated, query), repeat)
        reformulation_timing = best_of(lambda: reformulate(query, schema),
                                       repeat)
        reformulated = reformulation_timing.result

        def answer_via_reformulation():
            ref = reformulate(query, schema)
            return evaluate_reformulation(closed, ref)

        eval_ref = best_of(answer_via_reformulation, repeat)
        costs = QueryCosts(
            query_id=query_id,
            eval_saturated=eval_sat.seconds,
            eval_reformulated=eval_ref.seconds,
            reformulation_only=reformulation_timing.seconds,
            ucq_size=reformulated.ucq_size,  # type: ignore[union-attr]
            answers=len(eval_sat.result),  # type: ignore[arg-type]
        )
        query_costs.append(costs)
        entry = QueryThresholds(
            query_id=query_id,
            saturation=compute_threshold(
                saturation_timing.seconds, costs.eval_saturated,
                costs.eval_reformulated),
        )
        for kind, cost in maintenance_costs.items():
            entry.by_update[kind] = compute_threshold(
                cost, costs.eval_saturated, costs.eval_reformulated)
        thresholds.append(entry)

    return ThresholdReport(
        graph_size=len(graph),
        saturated_size=len(saturated),
        saturation_cost=saturation_timing.seconds,
        maintenance_costs=maintenance_costs,
        query_costs=query_costs,
        thresholds=thresholds,
    )


def _measure_maintenance(reasoner_factory, graph: Graph, ruleset: RuleSet,
                         batch: UpdateBatch, repeat: int) -> float:
    """Best-of-``repeat`` cost of applying one update batch.

    A fresh reasoner is built *outside* the timed region each time:
    the maintenance cost of Figure 3 is the delta application alone,
    not the initial saturation.
    """
    import time as _time

    best = math.inf
    for __ in range(repeat):
        reasoner = reasoner_factory(graph, ruleset)
        started = _time.perf_counter()
        if batch.kind.endswith("insert"):
            reasoner.insert(batch.triples)
        else:
            reasoner.delete(batch.triples)
        best = min(best, _time.perf_counter() - started)
    return best
